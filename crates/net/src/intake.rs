//! Batch UDP intake: `recvmmsg(2)` on Linux, single-`recv` elsewhere.
//!
//! The live ingest path is syscall-bound: one 40-byte heartbeat per
//! `recv(2)` means one kernel crossing per datagram. `recvmmsg(2)`
//! amortizes that crossing across up to [`BATCH`] datagrams — with
//! `MSG_WAITFORONE` it blocks until at least one datagram is available
//! and then drains whatever else the socket buffer holds, so latency
//! under light load is identical to `recv` while throughput under heavy
//! load scales with the batch size.
//!
//! The syscall is declared with a raw `extern "C"` block rather than a
//! libc crate dependency: three `#[repr(C)]` structs
//! (`iovec`/`msghdr`/`mmsghdr`, layouts fixed by the kernel ABI on
//! 64-bit Linux) are all it needs. The buffer arena is boxed so its
//! address is stable across moves of the [`BatchReceiver`]; the
//! scatter-gather descriptors are rebuilt on the stack each call, which
//! keeps the type free of self-references and costs a few cache lines
//! next to a syscall.
//!
//! On non-Linux targets [`BatchReceiver::recv_batch`] degrades to the
//! portable single-`recv` loop, returning one-datagram batches, so
//! callers stay `cfg`-free.
//!
//! This is the one module in the crate allowed to use `unsafe` (the
//! crate is `deny(unsafe_code)`): the FFI call and the pointer plumbing
//! around it are confined here behind a safe slice-returning API.
#![allow(unsafe_code)]
// Every unsafe operation must sit in an explicit `unsafe {}` block with
// its own `// SAFETY:` comment, even inside unsafe fns (there are none
// today; this keeps it that way).
#![deny(unsafe_op_in_unsafe_fn)]

use std::io;
use std::net::UdpSocket;

/// Maximum datagrams received per [`BatchReceiver::recv_batch`] call.
pub const BATCH: usize = 64;

/// Bytes reserved per datagram slot. Heartbeats are
/// [`crate::wire::WIRE_SIZE`] (32) bytes; the headroom tolerates
/// future wire versions that append fields (decoders read a prefix).
pub const DATAGRAM: usize = 64;

#[cfg(target_os = "linux")]
mod linux {
    use std::ffi::{c_int, c_uint, c_void};

    /// Scatter-gather element (`struct iovec`, `<sys/uio.h>`).
    #[repr(C)]
    pub struct Iovec {
        pub iov_base: *mut c_void,
        pub iov_len: usize,
    }

    /// Message header (`struct msghdr`, `<sys/socket.h>`, 64-bit Linux
    /// layout: kernel pads `msg_controllen` to pointer width).
    #[repr(C)]
    pub struct Msghdr {
        pub msg_name: *mut c_void,
        pub msg_namelen: c_uint,
        pub msg_iov: *mut Iovec,
        pub msg_iovlen: usize,
        pub msg_control: *mut c_void,
        pub msg_controllen: usize,
        pub msg_flags: c_int,
    }

    /// Multi-message header (`struct mmsghdr`, `<sys/socket.h>`).
    #[repr(C)]
    pub struct Mmsghdr {
        pub msg_hdr: Msghdr,
        pub msg_len: c_uint,
    }

    /// Block until at least one datagram arrives, then also return any
    /// further datagrams already queued, without waiting for more.
    pub const MSG_WAITFORONE: c_int = 0x10000;

    /// `setsockopt` level/name for the receive buffer size.
    pub const SOL_SOCKET: c_int = 1;
    pub const SO_RCVBUF: c_int = 8;

    // SAFETY: these signatures must match the kernel/glibc ABI exactly.
    // `recvmmsg`/`sendmmsg` are in glibc ≥ 2.12 and take (fd, msgvec,
    // vlen, flags[, timeout]) with the `#[repr(C)]` layouts above;
    // `setsockopt` is POSIX. Callers uphold pointer validity per call
    // site (each has its own SAFETY comment).
    extern "C" {
        pub fn recvmmsg(
            sockfd: c_int,
            msgvec: *mut Mmsghdr,
            vlen: c_uint,
            flags: c_int,
            timeout: *mut c_void,
        ) -> c_int;
        pub fn sendmmsg(sockfd: c_int, msgvec: *mut Mmsghdr, vlen: c_uint, flags: c_int) -> c_int;
        pub fn setsockopt(
            sockfd: c_int,
            level: c_int,
            optname: c_int,
            optval: *const c_void,
            optlen: c_uint,
        ) -> c_int;
    }
}

/// Requests a kernel receive buffer of `bytes` for `socket` (the kernel
/// doubles the request and caps it at `net.core.rmem_max`). A deep
/// buffer is the other half of batch intake: it is what absorbs a
/// traffic burst while the intake thread is between time slices, so the
/// next `recvmmsg` finds a full batch instead of a tail of drops.
/// Best-effort no-op off Linux.
#[cfg(target_os = "linux")]
pub fn set_recv_buffer(socket: &UdpSocket, bytes: usize) -> io::Result<()> {
    use std::ffi::{c_int, c_void};
    use std::os::fd::AsRawFd;
    let val: c_int = bytes.min(c_int::MAX as usize) as c_int;
    // SAFETY: passes a valid pointer/size pair for one c_int option.
    let rc = unsafe {
        linux::setsockopt(
            socket.as_raw_fd(),
            linux::SOL_SOCKET,
            linux::SO_RCVBUF,
            &val as *const c_int as *const c_void,
            std::mem::size_of::<c_int>() as std::ffi::c_uint,
        )
    };
    if rc != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Portable fallback: accepted but not applied.
#[cfg(not(target_os = "linux"))]
pub fn set_recv_buffer(_socket: &UdpSocket, _bytes: usize) -> io::Result<()> {
    Ok(())
}

/// Sends every datagram in `datagrams` on a connected socket, batching
/// kernel crossings with `sendmmsg(2)` on Linux (plain `send` loop
/// elsewhere). Returns how many datagrams were handed to the kernel;
/// short counts mean the socket reported an error mid-batch, which
/// heartbeat callers treat as loss.
#[cfg(target_os = "linux")]
pub fn send_batch(socket: &UdpSocket, datagrams: &[&[u8]]) -> io::Result<usize> {
    use linux::{sendmmsg, Iovec, Mmsghdr, Msghdr};
    use std::ffi::{c_uint, c_void};
    use std::os::fd::AsRawFd;
    use std::ptr;

    let mut sent = 0usize;
    for chunk in datagrams.chunks(BATCH) {
        let mut iovecs: [Iovec; BATCH] = std::array::from_fn(|i| {
            let d: &[u8] = chunk.get(i).copied().unwrap_or(&[]);
            Iovec {
                iov_base: d.as_ptr() as *mut c_void,
                iov_len: d.len(),
            }
        });
        let mut msgs: [Mmsghdr; BATCH] = std::array::from_fn(|i| Mmsghdr {
            msg_hdr: Msghdr {
                msg_name: ptr::null_mut(),
                msg_namelen: 0,
                msg_iov: &mut iovecs[i],
                msg_iovlen: 1,
                msg_control: ptr::null_mut(),
                msg_controllen: 0,
                msg_flags: 0,
            },
            msg_len: 0,
        });
        // SAFETY: the first `chunk.len()` descriptors point at live
        // caller slices; `vlen` never exceeds that count.
        let n = unsafe {
            sendmmsg(
                socket.as_raw_fd(),
                msgs.as_mut_ptr(),
                chunk.len() as c_uint,
                0,
            )
        };
        if n < 0 {
            if sent > 0 {
                return Ok(sent);
            }
            return Err(io::Error::last_os_error());
        }
        sent += n as usize;
        if (n as usize) < chunk.len() {
            return Ok(sent);
        }
    }
    Ok(sent)
}

/// Portable fallback: one `send` per datagram.
#[cfg(not(target_os = "linux"))]
pub fn send_batch(socket: &UdpSocket, datagrams: &[&[u8]]) -> io::Result<usize> {
    let mut sent = 0usize;
    for d in datagrams {
        match socket.send(d) {
            Ok(_) => sent += 1,
            Err(_) if sent > 0 => return Ok(sent),
            Err(e) => return Err(e),
        }
    }
    Ok(sent)
}

/// Reusable batch-receive state: a boxed buffer arena plus the received
/// length of each slot. One instance lives for the whole life of an
/// ingest thread; no per-batch allocation.
pub struct BatchReceiver {
    /// Datagram arena. Boxed so slot addresses survive moves of the
    /// receiver (the kernel writes through raw pointers into it).
    bufs: Box<[[u8; DATAGRAM]; BATCH]>,
    lens: [usize; BATCH],
}

impl Default for BatchReceiver {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchReceiver {
    /// Allocates the buffer arena.
    pub fn new() -> BatchReceiver {
        BatchReceiver {
            // hotpath:allow(alloc) — construction path: the arena is
            // allocated once per shard and reused for every batch; the
            // recv path only hands out slices into it.
            bufs: Box::new([[0u8; DATAGRAM]; BATCH]),
            lens: [0usize; BATCH],
        }
    }

    /// Receives up to [`BATCH`] datagrams in one kernel crossing,
    /// returning how many arrived. Honors the socket's configured read
    /// timeout (`WouldBlock`/`TimedOut` surface as errors, exactly like
    /// `UdpSocket::recv`). Datagrams longer than [`DATAGRAM`] are
    /// truncated, as with `recv` into a short buffer.
    #[cfg(target_os = "linux")]
    pub fn recv_batch(&mut self, socket: &UdpSocket) -> io::Result<usize> {
        use linux::{recvmmsg, Iovec, Mmsghdr, Msghdr, MSG_WAITFORONE};
        use std::ffi::{c_uint, c_void};
        use std::os::fd::AsRawFd;
        use std::ptr;

        // Rebuild the descriptors on the stack each call: they only
        // carry pointers into the (stable, boxed) arena, and a ~4 KiB
        // stack write is noise next to the syscall it precedes.
        let base = self.bufs.as_mut_ptr() as *mut u8;
        let mut iovecs: [Iovec; BATCH] = std::array::from_fn(|i| Iovec {
            // SAFETY: `i < BATCH`, so the offset stays inside the arena.
            iov_base: unsafe { base.add(i * DATAGRAM) } as *mut c_void,
            iov_len: DATAGRAM,
        });
        let mut msgs: [Mmsghdr; BATCH] = std::array::from_fn(|i| Mmsghdr {
            msg_hdr: Msghdr {
                msg_name: ptr::null_mut(),
                msg_namelen: 0,
                msg_iov: &mut iovecs[i],
                msg_iovlen: 1,
                msg_control: ptr::null_mut(),
                msg_controllen: 0,
                msg_flags: 0,
            },
            msg_len: 0,
        });
        // SAFETY: every `msg_iov` points at an `Iovec` that outlives the
        // call, every `iov_base` at `DATAGRAM` writable bytes of the
        // arena; a null timeout defers to the socket's own SO_RCVTIMEO.
        let n = unsafe {
            recvmmsg(
                socket.as_raw_fd(),
                msgs.as_mut_ptr(),
                BATCH as c_uint,
                MSG_WAITFORONE,
                ptr::null_mut(),
            )
        };
        if n < 0 {
            return Err(io::Error::last_os_error());
        }
        let n = n as usize;
        for (len, msg) in self.lens.iter_mut().zip(msgs.iter()).take(n) {
            *len = (msg.msg_len as usize).min(DATAGRAM);
        }
        Ok(n)
    }

    /// Portable fallback: one `recv`, returned as a one-datagram batch.
    #[cfg(not(target_os = "linux"))]
    pub fn recv_batch(&mut self, socket: &UdpSocket) -> io::Result<usize> {
        let len = socket.recv(&mut self.bufs[0])?;
        self.lens[0] = len.min(DATAGRAM);
        Ok(1)
    }

    /// The `i`-th datagram of the last batch (valid for `i < n` where
    /// `n` is the last `recv_batch` return value).
    pub fn datagram(&self, i: usize) -> &[u8] {
        &self.bufs[i][..self.lens[i]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn batch_receives_everything_queued() {
        let rx = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        rx.set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let tx = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        tx.connect(rx.local_addr().unwrap()).unwrap();
        for i in 0..10u8 {
            tx.send(&[i; 32]).unwrap();
        }
        let mut receiver = BatchReceiver::new();
        let mut got = Vec::new();
        while got.len() < 10 {
            let n = receiver.recv_batch(&rx).expect("datagrams queued");
            assert!(n >= 1);
            for i in 0..n {
                let d = receiver.datagram(i);
                assert_eq!(d.len(), 32);
                got.push(d[0]);
            }
        }
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_socket_times_out_like_recv() {
        let rx = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        rx.set_read_timeout(Some(Duration::from_millis(20)))
            .unwrap();
        let mut receiver = BatchReceiver::new();
        let err = receiver.recv_batch(&rx).unwrap_err();
        assert!(
            err.kind() == io::ErrorKind::WouldBlock || err.kind() == io::ErrorKind::TimedOut,
            "{err:?}"
        );
    }

    #[test]
    fn send_batch_round_trips_through_recv_batch() {
        let rx = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        rx.set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let tx = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        tx.connect(rx.local_addr().unwrap()).unwrap();
        // More datagrams than one send chunk, with distinct payloads.
        let payloads: Vec<[u8; 4]> = (0..(BATCH as u8 + 10)).map(|i| [i, 1, 2, 3]).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(|p| &p[..]).collect();
        assert_eq!(send_batch(&tx, &refs).unwrap(), payloads.len());

        let mut receiver = BatchReceiver::new();
        let mut got = Vec::new();
        while got.len() < payloads.len() {
            let n = receiver.recv_batch(&rx).expect("datagrams queued");
            for i in 0..n {
                let d = receiver.datagram(i);
                assert_eq!(&d[1..], &[1, 2, 3]);
                got.push(d[0]);
            }
        }
        got.sort_unstable();
        assert_eq!(got, (0..(BATCH as u8 + 10)).collect::<Vec<_>>());
    }

    #[test]
    fn recv_buffer_request_is_accepted() {
        let sock = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        set_recv_buffer(&sock, 1 << 20).expect("SO_RCVBUF request");
    }

    #[test]
    fn oversized_datagrams_truncate() {
        let rx = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        rx.set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let tx = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        tx.connect(rx.local_addr().unwrap()).unwrap();
        tx.send(&[7u8; 200]).unwrap();
        let mut receiver = BatchReceiver::new();
        let n = receiver.recv_batch(&rx).unwrap();
        assert_eq!(n, 1);
        assert_eq!(receiver.datagram(0).len(), DATAGRAM);
    }
}
