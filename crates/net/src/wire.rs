//! Heartbeat wire format.
//!
//! The paper's experiments send heartbeats over UDP/IP; this is the
//! datagram layout used by the live transport:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "2WHB"
//! 4       2     version (LE)
//! 6       2     reserved (zero)
//! 8       8     stream id (LE)   — distinguishes concurrent senders
//! 16      8     sequence number (LE, starts at 1)
//! 24      8     send timestamp, nanos on the sender's clock (LE)
//! 32      4     incarnation (LE, v2 only — 0 on the first boot)
//! 36      4     reserved (zero, v2 only)
//! ```
//!
//! 40 bytes total in version 2; version-1 frames are the 32-byte prefix
//! and still decode (yielding incarnation 0 — crash-stop traffic).
//! The sender timestamp feeds the `V(D)` estimator (§V-A.1), which is
//! immune to clock skew by construction. The incarnation number carries
//! the crash-*recovery* model: a restarted process bumps it, which
//! tells the monitor that a sequence-number reset is a new boot of the
//! same process rather than a stale duplicate.

use bytes::Bytes;
use twofd_sim::time::Nanos;

/// Datagram magic bytes.
pub const MAGIC: [u8; 4] = *b"2WHB";
/// Current wire version (incarnation-aware).
pub const VERSION: u16 = 2;
/// The original crash-stop wire version (no incarnation field).
pub const VERSION_V1: u16 = 1;
/// Encoded datagram size in bytes (current version).
pub const WIRE_SIZE: usize = 40;
/// Encoded size of a version-1 datagram (also the v2 prefix the two
/// versions share).
pub const WIRE_SIZE_V1: usize = 32;

/// One heartbeat datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Heartbeat {
    /// Identifies the sending stream (one per monitored process).
    pub stream: u64,
    /// Sequence number, starting at 1 (per incarnation).
    pub seq: u64,
    /// Send time on the sender's clock.
    pub sent_at: Nanos,
    /// Boot counter of the sending process: 0 on first start, bumped on
    /// every crash-recovery restart. Version-1 frames decode as 0.
    pub incarnation: u32,
}

/// Decoding failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Datagram shorter than its version requires ([`WIRE_SIZE_V1`] for
    /// v1, [`WIRE_SIZE`] for v2 — a truncated incarnation field is
    /// rejected, never guessed).
    TooShort {
        /// Received length.
        len: usize,
    },
    /// Magic bytes do not match.
    BadMagic,
    /// Unsupported version.
    BadVersion(u16),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::TooShort { len } => write!(f, "datagram too short ({len} bytes)"),
            WireError::BadMagic => write!(f, "bad magic"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
        }
    }
}

impl std::error::Error for WireError {}

impl Heartbeat {
    /// Encodes the heartbeat (current version) into a caller-provided
    /// buffer, without allocating. This is the sender hot-loop and
    /// batch-arena path; [`Heartbeat::encode`] wraps it for callers that
    /// want an owned buffer.
    pub fn encode_into(&self, buf: &mut [u8; WIRE_SIZE]) {
        buf[0..4].copy_from_slice(&MAGIC);
        buf[4..6].copy_from_slice(&VERSION.to_le_bytes());
        buf[6..8].copy_from_slice(&0u16.to_le_bytes());
        buf[8..16].copy_from_slice(&self.stream.to_le_bytes());
        buf[16..24].copy_from_slice(&self.seq.to_le_bytes());
        buf[24..32].copy_from_slice(&self.sent_at.0.to_le_bytes());
        buf[32..36].copy_from_slice(&self.incarnation.to_le_bytes());
        buf[36..40].copy_from_slice(&0u32.to_le_bytes());
    }

    /// Encodes the heartbeat into a fresh owned buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = [0u8; WIRE_SIZE];
        self.encode_into(&mut buf);
        Bytes::copy_from_slice(&buf)
    }

    /// Encodes the heartbeat as a version-1 (crash-stop) frame,
    /// dropping the incarnation field — what a pre-federation sender
    /// puts on the wire. Kept for compatibility tests and mixed-version
    /// fleets.
    pub fn encode_v1_into(&self, buf: &mut [u8; WIRE_SIZE_V1]) {
        buf[0..4].copy_from_slice(&MAGIC);
        buf[4..6].copy_from_slice(&VERSION_V1.to_le_bytes());
        buf[6..8].copy_from_slice(&0u16.to_le_bytes());
        buf[8..16].copy_from_slice(&self.stream.to_le_bytes());
        buf[16..24].copy_from_slice(&self.seq.to_le_bytes());
        buf[24..32].copy_from_slice(&self.sent_at.0.to_le_bytes());
    }

    /// [`Heartbeat::encode_v1_into`] into a fresh owned buffer.
    pub fn encode_v1(&self) -> Bytes {
        let mut buf = [0u8; WIRE_SIZE_V1];
        self.encode_v1_into(&mut buf);
        Bytes::copy_from_slice(&buf)
    }

    /// Decodes a heartbeat from a received datagram. Borrows the slice
    /// and allocates nothing, so a batch receive can decode every
    /// datagram in place in its buffer arena.
    ///
    /// Both wire versions are accepted: a version-1 frame (32-byte
    /// prefix, no incarnation field) decodes with incarnation 0, which
    /// is exactly the crash-stop semantics those senders encode. Each
    /// version reads only its own prefix, so trailing bytes are
    /// tolerated — but a version-2 frame whose incarnation field is
    /// truncated is rejected, never zero-filled.
    pub fn decode(data: &[u8]) -> Result<Heartbeat, WireError> {
        if data.len() < WIRE_SIZE_V1 {
            return Err(WireError::TooShort { len: data.len() });
        }
        let field =
            |at: usize| u64::from_le_bytes(data[at..at + 8].try_into().expect("8-byte field"));
        if data[0..4] != MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = u16::from_le_bytes(data[4..6].try_into().expect("2-byte field"));
        let incarnation = match version {
            VERSION_V1 => 0,
            VERSION => {
                if data.len() < WIRE_SIZE {
                    return Err(WireError::TooShort { len: data.len() });
                }
                u32::from_le_bytes(data[32..36].try_into().expect("4-byte field"))
            }
            other => return Err(WireError::BadVersion(other)),
        };
        Ok(Heartbeat {
            stream: field(8),
            seq: field(16),
            sent_at: Nanos(field(24)),
            incarnation,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_produces_fixed_size() {
        let hb = Heartbeat {
            stream: 7,
            seq: 42,
            sent_at: Nanos::from_millis(1234),
            incarnation: 3,
        };
        assert_eq!(hb.encode().len(), WIRE_SIZE);
        assert_eq!(hb.encode_v1().len(), WIRE_SIZE_V1);
    }

    #[test]
    fn round_trip() {
        let hb = Heartbeat {
            stream: u64::MAX,
            seq: 1,
            sent_at: Nanos(987_654_321),
            incarnation: u32::MAX,
        };
        assert_eq!(Heartbeat::decode(&hb.encode()).unwrap(), hb);
    }

    #[test]
    fn encode_into_matches_encode() {
        let hb = Heartbeat {
            stream: 0xDEAD_BEEF,
            seq: 77,
            sent_at: Nanos(123_456_789),
            incarnation: 9,
        };
        let mut buf = [0u8; WIRE_SIZE];
        hb.encode_into(&mut buf);
        assert_eq!(&buf[..], &hb.encode()[..]);
        assert_eq!(Heartbeat::decode(&buf).unwrap(), hb);
    }

    #[test]
    fn v1_frames_decode_with_incarnation_zero() {
        let hb = Heartbeat {
            stream: 11,
            seq: 4,
            sent_at: Nanos(777),
            incarnation: 6, // dropped by the v1 encoding
        };
        let decoded = Heartbeat::decode(&hb.encode_v1()).unwrap();
        assert_eq!(decoded.incarnation, 0);
        assert_eq!(
            decoded,
            Heartbeat {
                incarnation: 0,
                ..hb
            }
        );
    }

    #[test]
    fn rejects_short_datagrams() {
        assert_eq!(
            Heartbeat::decode(&[0u8; 10]),
            Err(WireError::TooShort { len: 10 })
        );
    }

    #[test]
    fn rejects_truncated_incarnation_field() {
        // A v2 frame cut anywhere inside [32, 40) claims an incarnation
        // it does not carry; the decoder must reject, not zero-fill.
        let hb = Heartbeat {
            stream: 5,
            seq: 2,
            sent_at: Nanos(42),
            incarnation: 1,
        };
        let full = hb.encode();
        for len in WIRE_SIZE_V1..WIRE_SIZE {
            assert_eq!(
                Heartbeat::decode(&full[..len]),
                Err(WireError::TooShort { len }),
                "truncated at {len}"
            );
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut data = Heartbeat {
            stream: 0,
            seq: 1,
            sent_at: Nanos::ZERO,
            incarnation: 0,
        }
        .encode()
        .to_vec();
        data[0] = b'X';
        assert_eq!(Heartbeat::decode(&data), Err(WireError::BadMagic));
    }

    #[test]
    fn rejects_unknown_version() {
        let mut data = Heartbeat {
            stream: 0,
            seq: 1,
            sent_at: Nanos::ZERO,
            incarnation: 0,
        }
        .encode()
        .to_vec();
        data[4] = 0xEE;
        data[5] = 0xEE;
        assert!(matches!(
            Heartbeat::decode(&data),
            Err(WireError::BadVersion(_))
        ));
    }

    #[test]
    fn trailing_bytes_are_tolerated() {
        // Future versions may append fields; decoders read a prefix —
        // per version: 32 bytes for v1, 40 for v2.
        let hb = Heartbeat {
            stream: 3,
            seq: 9,
            sent_at: Nanos(55),
            incarnation: 2,
        };
        let mut v2 = hb.encode().to_vec();
        v2.extend_from_slice(&[1, 2, 3]);
        assert_eq!(Heartbeat::decode(&v2).unwrap(), hb);
        let mut v1 = hb.encode_v1().to_vec();
        v1.extend_from_slice(&[4, 5, 6]);
        assert_eq!(Heartbeat::decode(&v1).unwrap().incarnation, 0);
    }

    proptest! {
        #[test]
        fn round_trip_any_values(
            stream in any::<u64>(),
            seq in any::<u64>(),
            at in any::<u64>(),
            inc in any::<u32>(),
        ) {
            let hb = Heartbeat { stream, seq, sent_at: Nanos(at), incarnation: inc };
            prop_assert_eq!(Heartbeat::decode(&hb.encode()).unwrap(), hb);
            let v1 = Heartbeat::decode(&hb.encode_v1()).unwrap();
            prop_assert_eq!(v1, Heartbeat { incarnation: 0, ..hb });
        }
    }
}
