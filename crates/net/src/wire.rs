//! Heartbeat wire format.
//!
//! The paper's experiments send heartbeats over UDP/IP; this is the
//! datagram layout used by the live transport:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "2WHB"
//! 4       2     version (LE)
//! 6       2     reserved (zero)
//! 8       8     stream id (LE)   — distinguishes concurrent senders
//! 16      8     sequence number (LE, starts at 1)
//! 24      8     send timestamp, nanos on the sender's clock (LE)
//! ```
//!
//! 32 bytes total. The sender timestamp feeds the `V(D)` estimator
//! (§V-A.1), which is immune to clock skew by construction.

use bytes::Bytes;
use twofd_sim::time::Nanos;

/// Datagram magic bytes.
pub const MAGIC: [u8; 4] = *b"2WHB";
/// Current wire version.
pub const VERSION: u16 = 1;
/// Encoded datagram size in bytes.
pub const WIRE_SIZE: usize = 32;

/// One heartbeat datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Heartbeat {
    /// Identifies the sending stream (one per monitored process).
    pub stream: u64,
    /// Sequence number, starting at 1.
    pub seq: u64,
    /// Send time on the sender's clock.
    pub sent_at: Nanos,
}

/// Decoding failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Datagram shorter than [`WIRE_SIZE`].
    TooShort {
        /// Received length.
        len: usize,
    },
    /// Magic bytes do not match.
    BadMagic,
    /// Unsupported version.
    BadVersion(u16),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::TooShort { len } => write!(f, "datagram too short ({len} bytes)"),
            WireError::BadMagic => write!(f, "bad magic"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
        }
    }
}

impl std::error::Error for WireError {}

impl Heartbeat {
    /// Encodes the heartbeat into a caller-provided buffer, without
    /// allocating. This is the sender hot-loop and batch-arena path;
    /// [`Heartbeat::encode`] wraps it for callers that want an owned
    /// buffer.
    pub fn encode_into(&self, buf: &mut [u8; WIRE_SIZE]) {
        buf[0..4].copy_from_slice(&MAGIC);
        buf[4..6].copy_from_slice(&VERSION.to_le_bytes());
        buf[6..8].copy_from_slice(&0u16.to_le_bytes());
        buf[8..16].copy_from_slice(&self.stream.to_le_bytes());
        buf[16..24].copy_from_slice(&self.seq.to_le_bytes());
        buf[24..32].copy_from_slice(&self.sent_at.0.to_le_bytes());
    }

    /// Encodes the heartbeat into a fresh owned buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = [0u8; WIRE_SIZE];
        self.encode_into(&mut buf);
        Bytes::copy_from_slice(&buf)
    }

    /// Decodes a heartbeat from a received datagram. Borrows the slice
    /// and allocates nothing, so a batch receive can decode every
    /// datagram in place in its buffer arena.
    pub fn decode(data: &[u8]) -> Result<Heartbeat, WireError> {
        if data.len() < WIRE_SIZE {
            return Err(WireError::TooShort { len: data.len() });
        }
        let field =
            |at: usize| u64::from_le_bytes(data[at..at + 8].try_into().expect("8-byte field"));
        if data[0..4] != MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = u16::from_le_bytes(data[4..6].try_into().expect("2-byte field"));
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        Ok(Heartbeat {
            stream: field(8),
            seq: field(16),
            sent_at: Nanos(field(24)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_produces_fixed_size() {
        let hb = Heartbeat {
            stream: 7,
            seq: 42,
            sent_at: Nanos::from_millis(1234),
        };
        assert_eq!(hb.encode().len(), WIRE_SIZE);
    }

    #[test]
    fn round_trip() {
        let hb = Heartbeat {
            stream: u64::MAX,
            seq: 1,
            sent_at: Nanos(987_654_321),
        };
        assert_eq!(Heartbeat::decode(&hb.encode()).unwrap(), hb);
    }

    #[test]
    fn encode_into_matches_encode() {
        let hb = Heartbeat {
            stream: 0xDEAD_BEEF,
            seq: 77,
            sent_at: Nanos(123_456_789),
        };
        let mut buf = [0u8; WIRE_SIZE];
        hb.encode_into(&mut buf);
        assert_eq!(&buf[..], &hb.encode()[..]);
        assert_eq!(Heartbeat::decode(&buf).unwrap(), hb);
    }

    #[test]
    fn rejects_short_datagrams() {
        assert_eq!(
            Heartbeat::decode(&[0u8; 10]),
            Err(WireError::TooShort { len: 10 })
        );
    }

    #[test]
    fn rejects_bad_magic() {
        let mut data = Heartbeat {
            stream: 0,
            seq: 1,
            sent_at: Nanos::ZERO,
        }
        .encode()
        .to_vec();
        data[0] = b'X';
        assert_eq!(Heartbeat::decode(&data), Err(WireError::BadMagic));
    }

    #[test]
    fn rejects_unknown_version() {
        let mut data = Heartbeat {
            stream: 0,
            seq: 1,
            sent_at: Nanos::ZERO,
        }
        .encode()
        .to_vec();
        data[4] = 0xEE;
        data[5] = 0xEE;
        assert!(matches!(
            Heartbeat::decode(&data),
            Err(WireError::BadVersion(_))
        ));
    }

    #[test]
    fn trailing_bytes_are_tolerated() {
        // Future versions may append fields; decoders read a prefix.
        let mut data = Heartbeat {
            stream: 3,
            seq: 9,
            sent_at: Nanos(55),
        }
        .encode()
        .to_vec();
        data.extend_from_slice(&[1, 2, 3]);
        assert!(Heartbeat::decode(&data).is_ok());
    }

    proptest! {
        #[test]
        fn round_trip_any_values(stream in any::<u64>(), seq in any::<u64>(), at in any::<u64>()) {
            let hb = Heartbeat { stream, seq, sent_at: Nanos(at) };
            prop_assert_eq!(Heartbeat::decode(&hb.encode()).unwrap(), hb);
        }
    }
}
