//! Heartbeat wire format.
//!
//! The paper's experiments send heartbeats over UDP/IP; this is the
//! datagram layout used by the live transport:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "2WHB"
//! 4       2     version (LE)
//! 6       2     reserved (zero)
//! 8       8     stream id (LE)   — distinguishes concurrent senders
//! 16      8     sequence number (LE, starts at 1)
//! 24      8     send timestamp, nanos on the sender's clock (LE)
//! ```
//!
//! 32 bytes total. The sender timestamp feeds the `V(D)` estimator
//! (§V-A.1), which is immune to clock skew by construction.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use twofd_sim::time::Nanos;

/// Datagram magic bytes.
pub const MAGIC: [u8; 4] = *b"2WHB";
/// Current wire version.
pub const VERSION: u16 = 1;
/// Encoded datagram size in bytes.
pub const WIRE_SIZE: usize = 32;

/// One heartbeat datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Heartbeat {
    /// Identifies the sending stream (one per monitored process).
    pub stream: u64,
    /// Sequence number, starting at 1.
    pub seq: u64,
    /// Send time on the sender's clock.
    pub sent_at: Nanos,
}

/// Decoding failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Datagram shorter than [`WIRE_SIZE`].
    TooShort {
        /// Received length.
        len: usize,
    },
    /// Magic bytes do not match.
    BadMagic,
    /// Unsupported version.
    BadVersion(u16),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::TooShort { len } => write!(f, "datagram too short ({len} bytes)"),
            WireError::BadMagic => write!(f, "bad magic"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
        }
    }
}

impl std::error::Error for WireError {}

impl Heartbeat {
    /// Encodes the heartbeat into a fresh buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(WIRE_SIZE);
        buf.put_slice(&MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u16_le(0);
        buf.put_u64_le(self.stream);
        buf.put_u64_le(self.seq);
        buf.put_u64_le(self.sent_at.0);
        buf.freeze()
    }

    /// Decodes a heartbeat from a received datagram.
    pub fn decode(mut data: &[u8]) -> Result<Heartbeat, WireError> {
        if data.len() < WIRE_SIZE {
            return Err(WireError::TooShort { len: data.len() });
        }
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        if magic != MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = data.get_u16_le();
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let _reserved = data.get_u16_le();
        Ok(Heartbeat {
            stream: data.get_u64_le(),
            seq: data.get_u64_le(),
            sent_at: Nanos(data.get_u64_le()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_produces_fixed_size() {
        let hb = Heartbeat {
            stream: 7,
            seq: 42,
            sent_at: Nanos::from_millis(1234),
        };
        assert_eq!(hb.encode().len(), WIRE_SIZE);
    }

    #[test]
    fn round_trip() {
        let hb = Heartbeat {
            stream: u64::MAX,
            seq: 1,
            sent_at: Nanos(987_654_321),
        };
        assert_eq!(Heartbeat::decode(&hb.encode()).unwrap(), hb);
    }

    #[test]
    fn rejects_short_datagrams() {
        assert_eq!(
            Heartbeat::decode(&[0u8; 10]),
            Err(WireError::TooShort { len: 10 })
        );
    }

    #[test]
    fn rejects_bad_magic() {
        let mut data = Heartbeat {
            stream: 0,
            seq: 1,
            sent_at: Nanos::ZERO,
        }
        .encode()
        .to_vec();
        data[0] = b'X';
        assert_eq!(Heartbeat::decode(&data), Err(WireError::BadMagic));
    }

    #[test]
    fn rejects_unknown_version() {
        let mut data = Heartbeat {
            stream: 0,
            seq: 1,
            sent_at: Nanos::ZERO,
        }
        .encode()
        .to_vec();
        data[4] = 0xEE;
        data[5] = 0xEE;
        assert!(matches!(
            Heartbeat::decode(&data),
            Err(WireError::BadVersion(_))
        ));
    }

    #[test]
    fn trailing_bytes_are_tolerated() {
        // Future versions may append fields; decoders read a prefix.
        let mut data = Heartbeat {
            stream: 3,
            seq: 9,
            sent_at: Nanos(55),
        }
        .encode()
        .to_vec();
        data.extend_from_slice(&[1, 2, 3]);
        assert!(Heartbeat::decode(&data).is_ok());
    }

    proptest! {
        #[test]
        fn round_trip_any_values(stream in any::<u64>(), seq in any::<u64>(), at in any::<u64>()) {
            let hb = Heartbeat { stream, seq, sent_at: Nanos(at) };
            prop_assert_eq!(Heartbeat::decode(&hb.encode()).unwrap(), hb);
        }
    }
}
