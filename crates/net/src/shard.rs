//! Sharded monitor runtime for high-cardinality fleets.
//!
//! The original fleet monitor funneled every datagram through a single
//! `Mutex<ProcessSet>`: one lock serializing ingestion, queries and (had
//! it existed) expiry sweeping across the whole fleet. This module
//! partitions that state by stream id:
//!
//! ```text
//!     ingest(stream, seq, arrival) / ingest_batch(&[jobs])
//!                        │  route: stream % n_shards
//!                        │  (batches grouped per shard, one
//!                        │   force_send_many per group)
//!        ┌───────────────┼───────────────┐
//!   [bounded q]     [bounded q]     [bounded q]     force_send:
//!        │               │               │          drop-oldest +
//!   shard worker    shard worker    shard worker    per-shard counter
//!   own ProcessSet  own ProcessSet  own ProcessSet
//!   + sweeper       + sweeper       + sweeper
//!        └───────────────┴───────────────┘
//!                 bounded events channel (counted drops)
//! ```
//!
//! * **No cross-shard locking** — each shard worker owns its own
//!   [`ProcessSet`]; a shard's mutex is only ever contended between that
//!   worker and direct queries against the same shard.
//! * **Bounded everything** — ingestion never blocks: a full shard queue
//!   drops its *oldest* heartbeat (the one a fresher heartbeat from the
//!   same regime supersedes anyway — sequence-number freshness makes
//!   drop-oldest strictly better than drop-newest here) and counts it.
//!   The event channel drops (and counts) on overflow instead of growing
//!   without bound.
//! * **Batched handoff** — [`ShardRuntime::ingest_batch`] groups a
//!   decoded batch by shard and enqueues each group with one channel
//!   lock acquisition and at most one worker wakeup
//!   (`force_send_many`), so channel costs amortize across the batch.
//!   The accounting identity is untouched: every heartbeat of a batch
//!   is counted received, and every one the enqueue displaces (from the
//!   queue or from the batch's own overflow) is counted dropped.
//! * **Deadline-driven sweeping** — each worker advances its shard's
//!   hierarchical timing wheel ([`twofd_core::wheel`]) after draining a
//!   batch, harvesting every expired horizon in one `O(1)`-amortized
//!   pass and publishing Trust→Suspect transitions at the exact
//!   `trust_until` instant without anyone querying. An idle worker
//!   *parks* on its queue until [`ProcessSet::next_expiry`] (any
//!   enqueue wakes it immediately), so idle shards cost ~zero CPU and
//!   suspicion is published at the freshness point itself rather than
//!   up to one poll interval late. `next_expiry` prunes superseded
//!   wheel entries before reporting, so the park deadline always
//!   belongs to a live stream — the old lazy heap could report a dead
//!   horizon and wake the worker for nothing.
//!
//! Because transitions carry exact timestamps (see
//! [`twofd_core::multi`]), the per-stream event timeline is a pure
//! function of the heartbeat schedule — scheduling jitter between
//! workers and sweepers cannot change it. The `shard_equivalence`
//! integration test exploits this to check the sharded runtime against
//! the sequential replay oracle event-for-event.
//!
//! ## Observability
//!
//! Every counter the runtime keeps lives in a [`Registry`]
//! ([`twofd_obs`]): per-shard received/dropped/applied/stale counters
//! and transition totals are always on (they cost the same relaxed
//! atomic increment the raw counters used to), a sweep-duration
//! histogram times every expiry sweep, and a scrape hook fills
//! queue-depth and live/suspect gauges at exposition time. Two opt-in
//! extras ride on the worker thread behind [`ObsOptions`]: an
//! inter-arrival jitter histogram, and per-stream online QoS tracking
//! ([`twofd_obs::QosTracker`]) fed by the same freshness decisions and
//! transition events the detectors already produce. [`RuntimeStats`]
//! remains the programmatic snapshot — it is now a thin view over the
//! same registry-backed cells that `GET /metrics` renders.

use crate::clock::TimeSource;
use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError, TrySendError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::{self, JoinHandle};
use std::time::Duration;
use twofd_core::{
    AnyDetector, Decision, DetectorBuilder, DetectorConfig, FdOutput, ProcessSet, ProcessStatus,
    QosMetrics, StreamTransition, TransitionKind,
};
use twofd_obs::{
    qos::judge, Counter, GaugeVec, Histogram, QosPlan, QosTracker, QosVerdict, Registry,
};
use twofd_sim::time::Nanos;

/// A Trust/Suspect transition of one monitored stream, as published by
/// the sharded runtime.
pub type FleetEvent = StreamTransition<u64>;

/// How a shard builds the detector for a newly seen stream.
///
/// Every path goes through [`DetectorConfig`] — and therefore through
/// `DetectorSpec`, the workspace's single construction recipe — so the
/// per-stream detectors are inline [`AnyDetector`] values: no per-stream
/// heap allocation, no vtable on the heartbeat hot path.
#[derive(Clone)]
pub enum DetectorPlan {
    /// Every stream gets the same recipe (the common case).
    Uniform(DetectorConfig),
    /// Per-stream recipes, e.g. per-tenant QoS tiers. The closure
    /// returns a *config*, not a detector, so construction still goes
    /// through the one spec-based path.
    PerStream(Arc<dyn Fn(&u64) -> DetectorConfig + Send + Sync>),
}

impl DetectorPlan {
    /// The recipe used for stream `stream`.
    pub fn config_for(&self, stream: &u64) -> DetectorConfig {
        match self {
            DetectorPlan::Uniform(config) => config.clone(),
            DetectorPlan::PerStream(f) => f(stream),
        }
    }
}

impl Default for DetectorPlan {
    /// The paper's configuration: `2w-fd(1,1000)` at the default
    /// interval/margin of [`DetectorConfig::default`].
    fn default() -> Self {
        DetectorPlan::Uniform(DetectorConfig::default())
    }
}

impl From<DetectorConfig> for DetectorPlan {
    fn from(config: DetectorConfig) -> Self {
        DetectorPlan::Uniform(config)
    }
}

impl fmt::Debug for DetectorPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectorPlan::Uniform(config) => f.debug_tuple("Uniform").field(config).finish(),
            DetectorPlan::PerStream(_) => f.debug_tuple("PerStream").field(&"<fn>").finish(),
        }
    }
}

impl DetectorBuilder<u64> for DetectorPlan {
    type Detector = AnyDetector;

    fn build(&self, stream: &u64) -> AnyDetector {
        self.config_for(stream).build()
    }
}

/// Opt-in worker-thread observability. The always-on counters and the
/// sweep histogram are not gated here — they are as cheap as the raw
/// atomics they replaced; these options add per-heartbeat bookkeeping
/// that is not.
#[derive(Debug, Clone, Default)]
pub struct ObsOptions {
    /// Record per-stream inter-arrival gaps into a per-shard
    /// `twofd_interarrival_seconds` histogram.
    pub jitter: bool,
    /// Attach an online [`QosTracker`] to streams per this plan; the
    /// estimates surface as `twofd_qos_*` gauges on scrape and through
    /// [`ShardRuntime::qos_metrics`] / [`ShardRuntime::qos_verdict`].
    pub qos: Option<QosPlan>,
}

impl ObsOptions {
    fn enabled(&self) -> bool {
        self.jitter || self.qos.is_some()
    }
}

/// Tuning knobs of the sharded runtime, including which detector runs
/// on each stream.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// How to build the detector for a newly seen stream. Defaults to
    /// the paper's `2w-fd(1,1000)` recipe.
    pub detector: DetectorPlan,
    /// Number of shard workers (streams are routed by `id % n_shards`).
    pub n_shards: usize,
    /// Per-shard heartbeat queue capacity; overflow drops the oldest
    /// queued heartbeat and counts it.
    pub queue_capacity: usize,
    /// Upper bound on one idle park: how long a worker may wait before
    /// re-validating its sweep deadline against the clock. Workers park
    /// on their queue until `min(next_expiry − now, sweep_interval)` —
    /// any enqueue wakes them immediately, and a worker with no pending
    /// expiry parks until traffic arrives — so this no longer bounds
    /// processing lag or publication lateness on a live clock (both are
    /// event-driven now); it only bounds how stale a park can go when
    /// the clock is driven externally (a [`crate::clock::ManualClock`]
    /// advanced while the worker sleeps).
    pub sweep_interval: Duration,
    /// Capacity of the shared transition-event channel; overflow drops
    /// the newest event and counts it.
    pub event_capacity: usize,
    /// Opt-in observability extras (jitter histogram, online QoS).
    pub obs: ObsOptions,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            detector: DetectorPlan::default(),
            n_shards: 4,
            queue_capacity: 1024,
            // Deadline re-validation cadence, not a poll period: 4
            // wakeups/s per idle shard with a pending expiry (zero with
            // none). The live clock wakes workers at the deadline
            // itself; see the field docs.
            sweep_interval: Duration::from_millis(250),
            event_capacity: 4096,
            obs: ObsOptions::default(),
        }
    }
}

/// One heartbeat routed to a shard: `(stream, seq, arrival,
/// incarnation)`. This is the element type of
/// [`ShardRuntime::ingest_batch`] slices. Crash-stop senders (and v1
/// wire frames) carry incarnation 0.
pub type Job = (u64, u64, Nanos, u32);

/// Largest number of heartbeats a worker applies under one lock
/// acquisition. Batching amortizes locking; the cap keeps queries from
/// starving under sustained floods.
const MAX_BATCH: usize = 512;

/// Largest slice [`ShardRuntime::ingest_batch`] groups in one pass; the
/// per-shard group buffer lives on the stack at this size. Larger
/// batches are simply processed in `GROUP_BATCH`-sized chunks.
const GROUP_BATCH: usize = 64;

/// Floor on one park while an expiry is pending. Waking *at* the
/// deadline cannot retire it (the sweep comparison is strict), so the
/// park always overshoots by at least this much; it also keeps a
/// manually driven clock pinned exactly at an expiry from spinning the
/// worker.
const MIN_PARK: Duration = Duration::from_micros(200);

/// Yields a worker spends waiting for its queue to refill after a
/// productive drain, before falling back to the sweep-then-park path.
/// Under sustained load the producer refills the queue within a yield,
/// so the worker picks the next batch up without a futex park/wake
/// round-trip — on a core-starved host those round-trips otherwise
/// dominate small per-shard batches (each wake retires
/// `batch/n_shards` heartbeats but costs a full context switch). On an
/// idle fleet the yields return immediately (no other runnable thread)
/// and the worker parks exactly as before.
const DRAIN_LINGER: u32 = 16;

/// Per-stream worker-side observability state.
struct StreamObs {
    last_arrival: Option<Nanos>,
    tracker: Option<QosTracker>,
}

/// Multiplicative hasher for the hot-obs stream map: the keys are
/// in-process `u64` stream ids, so SipHash's DoS resistance buys
/// nothing and its cost is measurable on the per-heartbeat path.
#[derive(Default)]
struct StreamHasher(u64);

impl std::hash::Hasher for StreamHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }
    fn write_u64(&mut self, n: u64) {
        // Fibonacci hashing: one multiply spreads sequential ids.
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type StreamMap = HashMap<u64, StreamObs, std::hash::BuildHasherDefault<StreamHasher>>;

/// The opt-in observability state of one shard, touched only by that
/// shard's worker and by scrapes/queries — never while the `set` lock
/// is held (lock order: `set` strictly before `hot`).
struct HotObs {
    jitter: Option<Histogram>,
    qos: Option<QosPlan>,
    streams: StreamMap,
}

impl HotObs {
    fn stream(&mut self, stream: u64) -> &mut StreamObs {
        let qos = &self.qos;
        self.streams.entry(stream).or_insert_with(|| StreamObs {
            last_arrival: None,
            tracker: qos
                .as_ref()
                .and_then(|p| p.config_for(&stream))
                .map(QosTracker::new),
        })
    }

    fn on_heartbeat(&mut self, stream: u64, seq: u64, arrival: Nanos, decision: Option<Decision>) {
        // Split borrows by hand (no `self.stream()` helper): the jitter
        // histogram must not be cloned per heartbeat.
        let qos = &self.qos;
        let obs = self.streams.entry(stream).or_insert_with(|| StreamObs {
            last_arrival: None,
            tracker: qos
                .as_ref()
                .and_then(|p| p.config_for(&stream))
                .map(QosTracker::new),
        });
        if let (Some(hist), Some(last)) = (self.jitter.as_ref(), obs.last_arrival) {
            hist.observe_span(arrival.saturating_since(last));
        }
        obs.last_arrival = Some(arrival);
        if let Some(tracker) = &mut obs.tracker {
            tracker.on_heartbeat(seq, arrival, decision);
        }
    }

    fn on_transition(&mut self, event: &FleetEvent) {
        if let Some(tracker) = &mut self.stream(event.key).tracker {
            tracker.on_transition_kind(event.kind, event.at);
        }
    }
}

struct ShardShared {
    set: Mutex<ProcessSet<u64, DetectorPlan>>,
    /// Heartbeats routed to this shard.
    received: Counter,
    /// Heartbeats evicted by drop-oldest backpressure.
    dropped: Counter,
    /// Heartbeats applied by the worker (fresh + stale).
    applied: Counter,
    /// Stale (duplicate/reordered) heartbeats ignored by detectors.
    stale: Counter,
    /// Suspect→Trust transitions published.
    to_trust: Counter,
    /// Trust→Suspect transitions published.
    to_suspect: Counter,
    /// Recovered transitions published (restart with a bumped
    /// incarnation re-trusted the stream).
    to_recovered: Counter,
    /// Wall-clock duration of each expiry sweep.
    sweep_hist: Histogram,
    /// Heartbeats whose hot-obs update (jitter/QoS tracker) has landed.
    /// The worker feeds the trackers *after* releasing the set lock, so
    /// `applied` can lead the tracker state by one pass; [`ShardRuntime::
    /// flush`] waits this counter out too, or a barrier-then-query could
    /// read a tracker missing the last batch's decisions. Only advanced
    /// when `hot` is `Some`; not a metric.
    obs_applied: AtomicU64,
    /// Opt-in extras; `None` when `ObsOptions` asked for nothing, so
    /// the default hot path pays zero for them.
    hot: Option<Mutex<HotObs>>,
}

struct Shard {
    tx: Option<Sender<Job>>,
    shared: Arc<ShardShared>,
    worker: Option<JoinHandle<()>>,
}

/// Observability snapshot of one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Heartbeats routed to this shard.
    pub received: u64,
    /// Heartbeats evicted by drop-oldest backpressure.
    pub dropped: u64,
    /// Heartbeats applied by the worker (fresh + stale). Every routed
    /// heartbeat ends up applied or dropped: once the queue drains,
    /// `received == applied + dropped`.
    pub applied: u64,
    /// Stale heartbeats ignored by detectors.
    pub stale: u64,
    /// Heartbeats currently queued, awaiting the worker.
    pub queue_depth: usize,
    /// Streams owned by this shard.
    pub streams: usize,
    /// Streams currently output `Trust`.
    pub live: usize,
    /// Streams currently output `Suspect`.
    pub suspect: usize,
    /// Suspect→Trust transitions published so far.
    pub to_trust: u64,
    /// Trust→Suspect transitions published so far.
    pub to_suspect: u64,
    /// Recovered transitions published so far (incarnation bumps).
    pub to_recovered: u64,
}

/// Observability snapshot of the whole runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Per-shard breakdown, indexed by shard.
    pub shards: Vec<ShardStats>,
    /// Transition events dropped because the event channel was full.
    pub events_dropped: u64,
}

impl RuntimeStats {
    /// Total heartbeats routed.
    pub fn received(&self) -> u64 {
        self.shards.iter().map(|s| s.received).sum()
    }

    /// Total heartbeats dropped by backpressure.
    pub fn dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped).sum()
    }

    /// Total heartbeats applied by workers.
    pub fn applied(&self) -> u64 {
        self.shards.iter().map(|s| s.applied).sum()
    }

    /// Total stale heartbeats ignored.
    pub fn stale(&self) -> u64 {
        self.shards.iter().map(|s| s.stale).sum()
    }

    /// Total monitored streams.
    pub fn streams(&self) -> usize {
        self.shards.iter().map(|s| s.streams).sum()
    }

    /// Streams currently trusted, fleet-wide.
    pub fn live(&self) -> usize {
        self.shards.iter().map(|s| s.live).sum()
    }

    /// Streams currently suspected, fleet-wide.
    pub fn suspect(&self) -> usize {
        self.shards.iter().map(|s| s.suspect).sum()
    }

    /// Total transitions published (all directions).
    pub fn transitions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.to_trust + s.to_suspect + s.to_recovered)
            .sum()
    }

    /// Total Recovered transitions published, fleet-wide.
    pub fn recovered(&self) -> u64 {
        self.shards.iter().map(|s| s.to_recovered).sum()
    }
}

/// Everything the workers, queries and scrape hooks share. Split from
/// [`ShardRuntime`] so the registry's scrape hook can hold a [`Weak`]
/// reference — the hook must not keep the worker queues alive after the
/// runtime is dropped, or shutdown would never disconnect them.
struct Inner {
    shards: Vec<Shard>,
    events_rx: Receiver<FleetEvent>,
    /// The workers' event channel, kept here too so
    /// [`ShardRuntime::sweep_now`] can publish caller-driven sweeps
    /// through the same stream. Does not keep workers alive — they own
    /// their own clones, and shutdown is the job queues disconnecting.
    events_tx: Sender<FleetEvent>,
    events_dropped: Counter,
    clock: Arc<dyn TimeSource>,
}

impl Inner {
    fn shard_of(&self, stream: u64) -> &Shard {
        &self.shards[(stream % self.shards.len() as u64) as usize]
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        for shard in &mut self.shards {
            shard.tx.take(); // disconnects the queue; worker drains and exits
        }
        for shard in &mut self.shards {
            if let Some(handle) = shard.worker.take() {
                let _ = handle.join();
            }
        }
    }
}

/// The per-stream QoS gauge families, resolved lazily per stream at
/// scrape time (scrape hooks run before the exposition lock is taken,
/// so `.with()` inside a hook is safe).
struct QosGauges {
    detection_time: GaugeVec,
    mistake_rate: GaugeVec,
    mistake_duration: GaugeVec,
    query_accuracy: GaugeVec,
    met: GaugeVec,
    axis_violated: GaugeVec,
}

impl QosGauges {
    fn new(registry: &Registry) -> QosGauges {
        QosGauges {
            detection_time: registry.gauge_vec(
                "twofd_qos_detection_time_seconds",
                "Online windowed estimate of detection time T_D",
                &["stream"],
            ),
            mistake_rate: registry.gauge_vec(
                "twofd_qos_mistake_rate_per_second",
                "Online windowed mistake rate (1 / T_MR)",
                &["stream"],
            ),
            mistake_duration: registry.gauge_vec(
                "twofd_qos_mistake_duration_seconds",
                "Online windowed mean mistake duration T_M",
                &["stream"],
            ),
            query_accuracy: registry.gauge_vec(
                "twofd_qos_query_accuracy",
                "Online windowed query accuracy probability P_A",
                &["stream"],
            ),
            met: registry.gauge_vec(
                "twofd_qos_met",
                "1 when the stream currently meets its configured QoS bound",
                &["stream"],
            ),
            axis_violated: registry.gauge_vec(
                "twofd_qos_axis_violated",
                "1 when the named QoS axis is currently out of contract",
                &["stream", "axis"],
            ),
        }
    }

    fn publish(&self, stream: u64, metrics: &QosMetrics, verdict: Option<&QosVerdict>) {
        let label = stream.to_string();
        self.detection_time
            .with(&[&label])
            .set(metrics.detection_time);
        self.mistake_rate.with(&[&label]).set(metrics.mistake_rate);
        self.mistake_duration
            .with(&[&label])
            .set(metrics.avg_mistake_duration);
        self.query_accuracy
            .with(&[&label])
            .set(metrics.query_accuracy);
        if let Some(v) = verdict {
            self.met.with(&[&label]).set(if v.met { 1.0 } else { 0.0 });
            for axis in twofd_obs::QosAxis::ALL {
                let violated = v.violated_axes.contains(&axis);
                self.axis_violated
                    .with(&[&label, axis.label()])
                    .set(if violated { 1.0 } else { 0.0 });
            }
        }
    }
}

/// The socket-free sharded monitor core.
///
/// [`ShardRuntime::ingest`] routes timestamped heartbeats to per-stream
/// detectors across `n_shards` worker threads; queries and the
/// [`ShardRuntime::events`] channel read the results. The UDP layer
/// ([`crate::fleet::FleetMonitor`]) is a thin shell around this.
pub struct ShardRuntime {
    inner: Arc<Inner>,
    registry: Registry,
}

impl ShardRuntime {
    /// Starts `config.n_shards` workers building detectors per
    /// `config.detector` and reading sweep times from `clock`, with a
    /// fresh private [`Registry`].
    ///
    /// # Panics
    /// If `n_shards` or `queue_capacity` is zero.
    pub fn new(config: ShardConfig, clock: Arc<dyn TimeSource>) -> Self {
        Self::with_registry(config, clock, Registry::new())
    }

    /// Like [`ShardRuntime::new`], but registers every metric in the
    /// caller's `registry` (so several components can share one
    /// exposition endpoint).
    ///
    /// # Panics
    /// If `n_shards` or `queue_capacity` is zero, or if `registry`
    /// already holds conflicting `twofd_shard_*` families.
    pub fn with_registry(
        config: ShardConfig,
        clock: Arc<dyn TimeSource>,
        registry: Registry,
    ) -> Self {
        assert!(config.n_shards > 0, "need at least one shard");
        assert!(
            config.queue_capacity > 0,
            "shard queues must hold something"
        );
        let (events_tx, events_rx) = bounded(config.event_capacity.max(1));
        let events_dropped = registry.counter(
            "twofd_events_dropped_total",
            "Transition events dropped because the event channel was full",
        );

        let received_vec = registry.counter_vec(
            "twofd_shard_received_total",
            "Heartbeats routed to the shard",
            &["shard"],
        );
        let dropped_vec = registry.counter_vec(
            "twofd_shard_dropped_total",
            "Heartbeats evicted by drop-oldest backpressure",
            &["shard"],
        );
        let applied_vec = registry.counter_vec(
            "twofd_shard_applied_total",
            "Heartbeats applied by the shard worker (fresh + stale)",
            &["shard"],
        );
        let stale_vec = registry.counter_vec(
            "twofd_shard_stale_total",
            "Stale (duplicate/reordered) heartbeats ignored by detectors",
            &["shard"],
        );
        let transitions_vec = registry.counter_vec(
            "twofd_shard_transitions_total",
            "Trust/Suspect transitions published",
            &["shard", "direction"],
        );
        let sweep_vec = registry.histogram_vec(
            "twofd_sweep_duration_seconds",
            "Wall-clock duration of each expiry sweep",
            &["shard"],
        );
        let jitter_vec = config.obs.jitter.then(|| {
            registry.histogram_vec(
                "twofd_interarrival_seconds",
                "Per-stream heartbeat inter-arrival gaps",
                &["shard"],
            )
        });

        let shards = (0..config.n_shards)
            .map(|i| {
                let label = i.to_string();
                let (tx, rx) = bounded::<Job>(config.queue_capacity);
                let hot = config.obs.enabled().then(|| {
                    Mutex::new(HotObs {
                        jitter: jitter_vec.as_ref().map(|v| v.with(&[&label])),
                        qos: config.obs.qos.clone(),
                        streams: StreamMap::default(),
                    })
                });
                let shared = Arc::new(ShardShared {
                    set: Mutex::new(ProcessSet::new(config.detector.clone())),
                    received: received_vec.with(&[&label]),
                    dropped: dropped_vec.with(&[&label]),
                    applied: applied_vec.with(&[&label]),
                    stale: stale_vec.with(&[&label]),
                    to_trust: transitions_vec.with(&[&label, "to_trust"]),
                    to_suspect: transitions_vec.with(&[&label, "to_suspect"]),
                    to_recovered: transitions_vec.with(&[&label, "to_recovered"]),
                    sweep_hist: sweep_vec.with(&[&label]),
                    obs_applied: AtomicU64::new(0),
                    hot,
                });
                let worker = {
                    let shared = Arc::clone(&shared);
                    let events_tx = events_tx.clone();
                    let events_dropped = events_dropped.clone();
                    let clock = Arc::clone(&clock);
                    let sweep_interval = config.sweep_interval;
                    thread::Builder::new()
                        // hotpath:allow(alloc) — startup path: one
                        // thread-name string per shard, at spawn.
                        .name(format!("twofd-shard-{i}"))
                        .spawn(move || {
                            shard_worker(
                                shared,
                                rx,
                                events_tx,
                                events_dropped,
                                clock,
                                sweep_interval,
                            )
                        })
                        // hotpath:allow(panic) — startup path: failing
                        // to spawn a worker means the runtime cannot
                        // exist; fail-stop at construction is correct.
                        .expect("spawn shard worker")
                };
                Shard {
                    tx: Some(tx),
                    shared,
                    worker: Some(worker),
                }
            })
            .collect();

        let inner = Arc::new(Inner {
            shards,
            events_rx,
            events_tx,
            events_dropped,
            clock,
        });
        Self::install_scrape_hook(&registry, &inner, config.obs.qos.is_some());
        ShardRuntime { inner, registry }
    }

    /// Registers the snapshot-gauge scrape hook. The hook holds a
    /// [`Weak`] so dropping the runtime still disconnects the worker
    /// queues; a scrape after that renders the last pushed values.
    fn install_scrape_hook(registry: &Registry, inner: &Arc<Inner>, qos: bool) {
        let queue_depth = registry.gauge_vec(
            "twofd_shard_queue_depth",
            "Heartbeats queued, awaiting the shard worker",
            &["shard"],
        );
        let streams_gauge = registry.gauge_vec(
            "twofd_shard_streams",
            "Monitored streams by current output state",
            &["shard", "state"],
        );
        let events_depth = registry.gauge(
            "twofd_events_queue_depth",
            "Transition events queued, awaiting the consumer",
        );
        let qos_gauges = qos.then(|| QosGauges::new(registry));
        let weak: Weak<Inner> = Arc::downgrade(inner);
        registry.on_scrape(move || {
            let Some(inner) = weak.upgrade() else { return };
            let now = inner.clock.now();
            events_depth.set(inner.events_rx.len() as f64);
            for (i, shard) in inner.shards.iter().enumerate() {
                let label = i.to_string();
                let depth = shard.tx.as_ref().map(|tx| tx.len()).unwrap_or(0);
                queue_depth.with(&[&label]).set(depth as f64);
                // hotpath:allow(block) — scrape path, not the worker
                // loop: runs at exporter cadence (seconds) and holds
                // each per-shard lock only for an O(live) tally.
                let (live, suspect) = shard.shared.set.lock().counts(now);
                streams_gauge.with(&[&label, "live"]).set(live as f64);
                streams_gauge.with(&[&label, "suspect"]).set(suspect as f64);
                if let (Some(gauges), Some(hot)) = (&qos_gauges, &shard.shared.hot) {
                    let mut hot = hot.lock();
                    for (stream, obs) in hot.streams.iter_mut() {
                        if let Some(tracker) = &mut obs.tracker {
                            let metrics = tracker.metrics_at(now);
                            let verdict = tracker.config().spec.map(|spec| judge(&spec, &metrics));
                            gauges.publish(*stream, &metrics, verdict.as_ref());
                        }
                    }
                }
            }
        });
    }

    /// The registry holding every metric of this runtime. Clone it into
    /// a [`twofd_obs::MetricsServer`] to serve `GET /metrics`.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    fn shard_of(&self, stream: u64) -> &Shard {
        self.inner.shard_of(stream)
    }

    /// Routes one decoded, timestamped heartbeat to its shard with
    /// crash-stop semantics (incarnation 0). Never blocks: a full shard
    /// queue evicts its oldest heartbeat and counts the drop.
    pub fn ingest(&self, stream: u64, seq: u64, arrival: Nanos) {
        self.ingest_incarnated(stream, seq, arrival, 0);
    }

    /// Routes one decoded, timestamped heartbeat carrying the sender's
    /// boot counter. A higher incarnation than the stream's current one
    /// resets its detector (the sequence-number restart is a new boot,
    /// not stale traffic) and publishes a `Recovered` transition; a
    /// lower one is dropped as stale. Never blocks.
    pub fn ingest_incarnated(&self, stream: u64, seq: u64, arrival: Nanos, incarnation: u32) {
        let shard = self.shard_of(stream);
        shard.shared.received.inc();
        // hotpath:allow(panic) — invariant: `tx` is only taken in
        // `Drop`, and `ingest` borrows `&self`, so the runtime is
        // necessarily still alive here.
        match shard.tx.as_ref().expect("runtime is live").force_send((
            stream,
            seq,
            arrival,
            incarnation,
        )) {
            Ok(Some(_displaced)) => {
                shard.shared.dropped.inc();
            }
            Ok(None) => {}
            Err(_) => {} // worker already shut down
        }
    }

    /// Routes a batch of decoded, timestamped heartbeats, grouping them
    /// by shard so that each shard's queue is taken once per batch (one
    /// lock acquisition, at most one worker wakeup) instead of once per
    /// heartbeat. Never blocks; ordering per stream is preserved, and
    /// the accounting identity is exact: every job is counted received
    /// and everything the enqueue displaces — whether evicted from the
    /// queue or shed from an over-capacity batch — is counted dropped.
    ///
    /// Feeding the same `(stream, seq, arrival, incarnation)` jobs
    /// through [`ShardRuntime::ingest_incarnated`] one at a time
    /// produces the identical
    /// transition timeline; batching is invisible to detector semantics
    /// (`tests/shard_equivalence.rs` enforces this differentially).
    pub fn ingest_batch(&self, jobs: &[Job]) {
        let n = self.inner.shards.len() as u64;
        if n == 1 {
            self.enqueue_group(&self.inner.shards[0], jobs);
            return;
        }
        // Group on a stack buffer, one shard at a time. O(n_shards ×
        // chunk) scans of a tiny array beat allocating per-shard
        // vectors on the ingest hot path.
        for chunk in jobs.chunks(GROUP_BATCH) {
            let mut group = [(0u64, 0u64, Nanos(0), 0u32); GROUP_BATCH];
            for (i, shard) in self.inner.shards.iter().enumerate() {
                let mut len = 0;
                for &job in chunk {
                    if job.0 % n == i as u64 {
                        group[len] = job;
                        len += 1;
                    }
                }
                if len > 0 {
                    self.enqueue_group(shard, &group[..len]);
                }
            }
        }
    }

    /// Enqueues one shard's slice of a batch with a single channel
    /// operation, reconciling the counters exactly.
    fn enqueue_group(&self, shard: &Shard, group: &[Job]) {
        if group.is_empty() {
            return;
        }
        shard.shared.received.add(group.len() as u64);
        // Err means the worker already shut down; the jobs are dropped on
        // the floor exactly like the seed's per-job `ingest`.
        // hotpath:allow(panic) — same `tx` liveness invariant as
        // `ingest_incarnated`: `tx` is taken only in `Drop`.
        if let Ok(evicted) = shard
            .tx
            .as_ref()
            .expect("runtime is live")
            .force_send_many(group)
        {
            if evicted > 0 {
                shard.shared.dropped.add(evicted as u64);
            }
        }
    }

    /// Pre-registers a stream so it is reported (as suspect) before its
    /// first heartbeat. Interns the stream to a dense per-shard slot;
    /// registering an already-known stream is a no-op (state, queued
    /// expiries and the stream-count gauges are unaffected).
    pub fn register(&self, stream: u64) {
        // hotpath:allow(block) — control-plane admin op, not the worker
        // loop: the per-shard mutex is held for one O(1) insert.
        self.shard_of(stream).shared.set.lock().register(stream);
    }

    /// Removes a stream from monitoring; returns whether it existed.
    /// The detector state, queued expiries (dead by slot-generation
    /// bump) and any per-stream QoS/obs state are released, and the
    /// stream-count gauges reconcile immediately. A later heartbeat or
    /// [`ShardRuntime::register`] starts a fresh incarnation with no
    /// memory of the old one.
    pub fn deregister(&self, stream: u64) -> bool {
        let shard = self.shard_of(stream);
        // Lock order: `set` strictly before `hot` (never held together).
        // hotpath:allow(block) — control-plane admin op: two short
        // per-shard critical sections (O(1) removals), off the
        // heartbeat path.
        let existed = shard.shared.set.lock().deregister(&stream);
        if let Some(hot) = shard.shared.hot.as_ref() {
            hot.lock().streams.remove(&stream);
        }
        existed
    }

    /// Adopts a stream from a relayed liveness digest: seeds (or
    /// refreshes) the stream's trust horizon and incarnation from a
    /// peer monitor's view, so detection continues across a monitor
    /// crash without waiting for the next direct heartbeat. Returns
    /// whether the relayed view was applied — fresher local state
    /// (a higher incarnation, a later local horizon, or an already
    /// expired relayed horizon) wins and the call is a no-op.
    ///
    /// Synchronous: any resulting Trust transition is published through
    /// [`ShardRuntime::events`] before the call returns, and the
    /// adopted horizon expires through the ordinary sweep path.
    pub fn adopt(&self, stream: u64, incarnation: u32, trust_until: Nanos) -> bool {
        let now = self.inner.clock.now();
        let shard = self.shard_of(stream);
        // hotpath:allow(alloc) — digest-relay control plane: `adopt`
        // runs at relay cadence, not per heartbeat; one scratch vector
        // per call is fine.
        let mut events: Vec<FleetEvent> = Vec::new();
        // Lock order: `set` strictly before `hot` (never held together).
        // hotpath:allow(block) — digest-relay control plane: short
        // per-shard critical sections, serialized with the worker by
        // design (the shard mutex IS the serialization point).
        let applied =
            shard
                .shared
                .set
                .lock()
                .adopt(stream, incarnation, trust_until, now, &mut events);
        if !events.is_empty() {
            if let Some(hot) = &shard.shared.hot {
                let mut hot = hot.lock();
                if hot.qos.is_some() {
                    for event in &events {
                        hot.on_transition(event);
                    }
                }
            }
            publish(
                &shard.shared,
                &self.inner.events_tx,
                &self.inner.events_dropped,
                &mut events,
            );
        }
        applied
    }

    /// Current output for one stream (`None` if never seen/registered).
    pub fn output(&self, stream: u64) -> Option<FdOutput> {
        let now = self.inner.clock.now();
        // hotpath:allow(block) — caller-side query, not the worker
        // loop: one O(1) lookup under the per-shard mutex.
        self.shard_of(stream).shared.set.lock().output(&stream, now)
    }

    /// Status snapshot of every monitored stream, across all shards.
    pub fn statuses(&self) -> Vec<ProcessStatus<u64>> {
        let now = self.inner.clock.now();
        // hotpath:allow(block) — caller-side snapshot: locks shards one
        // at a time for an O(live) copy; workers stall at most one
        // shard's copy, never the fleet.
        self.inner
            .shards
            .iter()
            .flat_map(|s| s.shared.set.lock().statuses(now))
            .collect()
    }

    /// Streams currently suspected, across all shards.
    pub fn suspected(&self) -> Vec<u64> {
        let now = self.inner.clock.now();
        // hotpath:allow(block) — caller-side snapshot, same per-shard
        // O(live) copy discipline as `statuses`.
        self.inner
            .shards
            .iter()
            .flat_map(|s| s.shared.set.lock().suspected(now))
            .collect()
    }

    /// Number of streams currently monitored.
    pub fn len(&self) -> usize {
        // hotpath:allow(block) — caller-side query: O(1) tally under
        // each per-shard mutex, off the heartbeat path.
        self.inner
            .shards
            .iter()
            .map(|s| s.shared.set.lock().len())
            .sum()
    }

    /// True when no stream is monitored.
    pub fn is_empty(&self) -> bool {
        // hotpath:allow(block) — caller-side query: O(1) check under
        // each per-shard mutex, off the heartbeat path.
        self.inner
            .shards
            .iter()
            .all(|s| s.shared.set.lock().is_empty())
    }

    /// The stream of Trust/Suspect transitions, timestamped exactly.
    pub fn events(&self) -> &Receiver<FleetEvent> {
        &self.inner.events_rx
    }

    /// Transition events dropped because the event channel was full.
    pub fn events_dropped(&self) -> u64 {
        self.inner.events_dropped.get()
    }

    /// The online QoS estimates for one stream as of now, if QoS
    /// tracking is enabled ([`ObsOptions::qos`]) and covers the stream.
    pub fn qos_metrics(&self, stream: u64) -> Option<QosMetrics> {
        let now = self.inner.clock.now();
        let shard = self.shard_of(stream);
        // hotpath:allow(block) — observer query: one O(1) tracker
        // lookup under the per-shard hot lock, off the worker loop.
        let mut hot = shard.shared.hot.as_ref()?.lock();
        let tracker = hot.streams.get_mut(&stream)?.tracker.as_mut()?;
        Some(tracker.metrics_at(now))
    }

    /// The live verdict of one stream against its configured QoS bound,
    /// if QoS tracking is enabled and covers the stream. Vacuously met
    /// when the tracker has no spec.
    pub fn qos_verdict(&self, stream: u64) -> Option<QosVerdict> {
        let now = self.inner.clock.now();
        let shard = self.shard_of(stream);
        // hotpath:allow(block) — observer query, same O(1) hot-lock
        // discipline as `qos_metrics`.
        let mut hot = shard.shared.hot.as_ref()?.lock();
        let tracker = hot.streams.get_mut(&stream)?.tracker.as_mut()?;
        Some(tracker.verdict_at(now))
    }

    /// Observability snapshot: per-shard counters, queue depths and
    /// live/suspect tallies.
    pub fn stats(&self) -> RuntimeStats {
        let now = self.inner.clock.now();
        let shards = self
            .inner
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let (streams, live, suspect, queue_depth) = {
                    // hotpath:allow(block) — observability snapshot:
                    // per-shard O(live) tally at caller cadence.
                    let set = s.shared.set.lock();
                    let (live, suspect) = set.counts(now);
                    let depth = s.tx.as_ref().map(|tx| tx.len()).unwrap_or(0);
                    (set.len(), live, suspect, depth)
                };
                ShardStats {
                    shard: i,
                    received: s.shared.received.get(),
                    dropped: s.shared.dropped.get(),
                    applied: s.shared.applied.get(),
                    stale: s.shared.stale.get(),
                    queue_depth,
                    streams,
                    live,
                    suspect,
                    to_trust: s.shared.to_trust.get(),
                    to_suspect: s.shared.to_suspect.get(),
                    to_recovered: s.shared.to_recovered.get(),
                }
            })
            .collect();
        RuntimeStats {
            shards,
            events_dropped: self.events_dropped(),
        }
    }

    /// Blocks until every heartbeat ingested *before this call* has been
    /// applied by its shard worker (dropped heartbeats count as handled).
    /// Benches and deterministic tests use this as a barrier.
    pub fn flush(&self) {
        loop {
            let behind = self.inner.shards.iter().any(|s| {
                let shared = &s.shared;
                let handled = |done: u64| done + shared.dropped.get() < shared.received.get();
                // The worker feeds the hot-obs trackers after releasing
                // the set lock, so `applied` alone would let a
                // barrier-then-query read a tracker missing the last
                // batch; wait for the obs echo too when extras are on.
                handled(shared.applied.get())
                    || (shared.hot.is_some() && handled(shared.obs_applied.load(Ordering::Acquire)))
            });
            if !behind {
                return;
            }
            // hotpath:allow(block) — `flush` is a barrier and blocks by
            // contract (test/bench callers only); the 200 µs poll
            // bounds each wait, and the worker loop never calls it.
            thread::sleep(Duration::from_micros(200));
        }
    }

    /// Runs one expiry sweep over every shard from the *caller's*
    /// thread, at the clock's current instant, publishing any resulting
    /// Trust→Suspect transitions through the same [`ShardRuntime::events`]
    /// channel the workers use.
    ///
    /// This is the virtual-time barrier: a deterministic driver that
    /// jumps a [`crate::clock::ManualClock`] past a trust horizon calls
    /// [`ShardRuntime::flush`], advances the clock, then `sweep_now` —
    /// and the suspicion is published before the call returns, instead
    /// of whenever a parked worker next re-validates its deadline
    /// (bounded only by `sweep_interval` wall time). Idempotent: a
    /// sweep retires each expired horizon exactly once, so calling
    /// again — or racing a worker's own sweep, with which it serializes
    /// on the shard lock — publishes nothing twice.
    pub fn sweep_now(&self) {
        let now = self.inner.clock.now();
        // hotpath:allow(alloc) — deterministic-driver path, called at
        // sweep cadence from tests/sims; one scratch vector per call.
        let mut events: Vec<FleetEvent> = Vec::new();
        for shard in &self.inner.shards {
            {
                // hotpath:allow(block) — caller-side sweep: serializes
                // with the worker on the shard mutex by design, holding
                // it for exactly one sweep.
                let mut set = shard.shared.set.lock();
                // xtask:allow(wall_clock) — measures sweep duration for
                // the sweep_hist metric; never feeds detector decisions.
                let sweep_started = std::time::Instant::now();
                set.sweep(now, &mut events);
                shard
                    .shared
                    .sweep_hist
                    .observe_ns(sweep_started.elapsed().as_nanos() as u64);
            }
            if events.is_empty() {
                continue;
            }
            // Feed the QoS trackers outside the set lock, exactly like
            // the worker (lock order: `set` strictly before `hot`).
            // hotpath:allow(block) — caller-side sweep continued: the
            // hot lock is held per shard for the O(events) tracker
            // update only.
            if let Some(hot) = &shard.shared.hot {
                let mut hot = hot.lock();
                if hot.qos.is_some() {
                    for event in &events {
                        hot.on_transition(event);
                    }
                }
            }
            publish(
                &shard.shared,
                &self.inner.events_tx,
                &self.inner.events_dropped,
                &mut events,
            );
        }
    }
}

/// How long an idle worker may park before re-reading the clock:
/// exactly until the next freshness point (plus a strictness epsilon —
/// the sweep comparison is strict, so waking *at* the deadline would
/// retire nothing), capped at `sweep_interval` so an externally driven
/// clock that jumps while the worker sleeps is noticed within one
/// interval. `None` parks indefinitely: with no pending expiry there is
/// nothing to sweep, and any enqueue (or shutdown) wakes the worker.
///
/// `next_expiry` is a *live* horizon ([`ProcessSet::next_expiry`] prunes
/// superseded entries before reporting), so a park here always ends at
/// an instant where there is real expiry work — the stale-horizon
/// park-and-wake-for-nothing cycle of the lazy heap cannot happen.
fn park_duration(
    next_expiry: Option<Nanos>,
    now: Nanos,
    sweep_interval: Duration,
) -> Option<Duration> {
    next_expiry.map(|t| {
        let until = Duration::from_nanos(t.saturating_since(now).0) + Duration::from_nanos(1);
        until.clamp(MIN_PARK, sweep_interval.max(MIN_PARK))
    })
}

fn shard_worker(
    shared: Arc<ShardShared>,
    rx: Receiver<Job>,
    events_tx: Sender<FleetEvent>,
    events_dropped: Counter,
    clock: Arc<dyn TimeSource>,
    sweep_interval: Duration,
) {
    // hotpath:allow(alloc) — worker startup: the event and scratch
    // vectors are allocated once per worker thread and reused (drained,
    // never dropped) across every pass of the loop below.
    let mut events: Vec<FleetEvent> = Vec::new();
    // Heartbeats applied this pass, kept for the hot-obs update; only
    // populated when the extras are enabled.
    let mut scratch: Vec<(Job, Option<Decision>)> = Vec::new();
    let track = shared.hot.is_some();
    // Transitions only matter to the hot state when QoS trackers exist;
    // a jitter-only configuration skips the per-event map walk.
    // hotpath:allow(block) — worker startup: one hot-lock peek at the
    // configuration before the loop begins, never per pass.
    let track_transitions = shared
        .hot
        .as_ref()
        .is_some_and(|hot| hot.lock().qos.is_some());
    // A job received while parked, carried into the next pass so it is
    // applied under the same lock (and before the same sweep) as the
    // rest of its batch.
    let mut pending: Option<Job> = None;
    loop {
        // Read the sweep time *before* draining: anything enqueued before
        // the clock reached `now` is applied first, so the sweep can
        // never expire a horizon that a queued heartbeat extends.
        let now = clock.now();
        let mut disconnected = false;
        let mut drained_all = true;
        let mut batch = 0usize;
        let next_expiry;
        {
            // hotpath:allow(block) — this per-shard mutex IS the
            // shard's designed serialization point: single-writer
            // worker, uncontended except against short control-plane
            // sections, held for at most MAX_BATCH applies + one sweep
            // (parking_lot fast path is one CAS when uncontended).
            let mut set = shared.set.lock();
            if let Some(job) = pending.take() {
                let decision = apply(&mut set, &shared, job, &mut events);
                if track {
                    scratch.push((job, decision));
                }
                batch += 1;
            }
            loop {
                if batch >= MAX_BATCH {
                    // Queue may still hold heartbeats: sweeping now
                    // could mis-order against them. Sweep next pass.
                    drained_all = rx.is_empty();
                    break;
                }
                match rx.try_recv() {
                    Ok(job) => {
                        let decision = apply(&mut set, &shared, job, &mut events);
                        if track {
                            scratch.push((job, decision));
                        }
                        batch += 1;
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        disconnected = true;
                        break;
                    }
                }
            }
            if drained_all {
                // xtask:allow(wall_clock) — measures sweep duration for
                // the sweep_hist metric; never feeds detector decisions.
                let sweep_started = std::time::Instant::now();
                set.sweep(now, &mut events);
                shared
                    .sweep_hist
                    .observe_ns(sweep_started.elapsed().as_nanos() as u64);
            }
            next_expiry = set.next_expiry();
        }
        // Hot-obs update outside the set lock (lock order: set ≺ hot).
        // Heartbeats first, then transitions: TD samples are
        // order-insensitive, and the transition list already carries the
        // exact mistake timeline.
        if let Some(hot) = &shared.hot {
            if !scratch.is_empty() || (track_transitions && !events.is_empty()) {
                // hotpath:allow(block) — the worker's own hot lock,
                // taken after releasing `set` (lock order: set ≺ hot),
                // held for the O(batch) tracker update; contended only
                // by scrape/query calls, which are short and rare.
                let mut hot = hot.lock();
                for ((stream, seq, arrival, _incarnation), decision) in scratch.drain(..) {
                    hot.on_heartbeat(stream, seq, arrival, decision);
                }
                if track_transitions {
                    for event in &events {
                        hot.on_transition(event);
                    }
                }
            }
            if batch > 0 {
                // Release pairs with the Acquire in `flush`: once the
                // count covers a heartbeat, its tracker update (and the
                // transitions of the same pass, applied just above) is
                // visible to whoever the barrier releases.
                shared
                    .obs_applied
                    .fetch_add(batch as u64, Ordering::Release);
            }
        }
        publish(&shared, &events_tx, &events_dropped, &mut events);
        if disconnected {
            return;
        }
        if batch > 0 {
            // Just drained a batch: under load the producer refills the
            // queue within a yield, and picking the next batch up here
            // skips the park/wake context switch entirely. The wait
            // touches only the queue (never the detector set lock, so
            // it cannot contend with queries or scrapes); if the queue
            // stays empty the next pass sweeps once and parks as
            // before.
            let mut spins = DRAIN_LINGER;
            while spins > 0 && rx.is_empty() {
                thread::yield_now();
                spins -= 1;
            }
        } else {
            // Idle: park until the next freshness point — or until an
            // enqueue wakes us, which is how a fresh batch starts
            // processing immediately instead of on the next poll tick.
            // A disconnect while parked falls through to one final pass
            // (drain + sweep) before the loop observes it and exits.
            match park_duration(next_expiry, now, sweep_interval) {
                Some(timeout) => {
                    if let Ok(job) = rx.recv_timeout(timeout) {
                        pending = Some(job);
                    }
                }
                None => {
                    if let Ok(job) = rx.recv() {
                        pending = Some(job);
                    }
                }
            }
        }
    }
}

fn apply(
    set: &mut ProcessSet<u64, DetectorPlan>,
    shared: &ShardShared,
    (stream, seq, arrival, incarnation): Job,
    events: &mut Vec<FleetEvent>,
) -> Option<Decision> {
    let decision = set.on_heartbeat_incarnated(stream, incarnation, seq, arrival, events);
    if decision.is_none() {
        shared.stale.inc();
    }
    shared.applied.inc();
    decision
}

fn publish(
    shared: &ShardShared,
    events_tx: &Sender<FleetEvent>,
    events_dropped: &Counter,
    events: &mut Vec<FleetEvent>,
) {
    for event in events.drain(..) {
        match event.kind {
            TransitionKind::Trust => shared.to_trust.inc(),
            TransitionKind::Suspect => shared.to_suspect.inc(),
            TransitionKind::Recovered => shared.to_recovered.inc(),
        };
        if let Err(TrySendError::Full(_)) = events_tx.try_send(event) {
            events_dropped.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use twofd_core::DetectorSpec;
    use twofd_obs::QosTrackerConfig;
    use twofd_sim::time::Span;

    const DI: Span = Span(100_000_000); // 100 ms

    fn plan() -> DetectorPlan {
        DetectorConfig::new(DetectorSpec::TwoWindow { n1: 1, n2: 100 }, DI, 0.04).into()
    }

    fn runtime_with_manual_clock(n_shards: usize) -> (ShardRuntime, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let config = ShardConfig {
            detector: plan(),
            n_shards,
            sweep_interval: Duration::from_millis(1),
            ..ShardConfig::default()
        };
        let rt = ShardRuntime::new(config, clock.clone() as Arc<dyn TimeSource>);
        (rt, clock)
    }

    fn hb(seq: u64) -> Nanos {
        Nanos(seq * DI.0 + 10_000_000)
    }

    #[test]
    fn routes_streams_across_shards() {
        let (rt, clock) = runtime_with_manual_clock(4);
        for stream in 0..8u64 {
            clock.advance_to(hb(1));
            rt.ingest(stream, 1, hb(1));
        }
        rt.flush();
        assert_eq!(rt.len(), 8);
        let stats = rt.stats();
        assert_eq!(stats.shards.len(), 4);
        // stream % 4 routing: two streams per shard.
        for s in &stats.shards {
            assert_eq!(s.streams, 2, "{stats:?}");
            assert_eq!(s.received, 2);
        }
        assert_eq!(stats.received(), 8);
        assert_eq!(stats.dropped(), 0);
    }

    #[test]
    fn sweeper_publishes_suspicion_without_queries() {
        let (rt, clock) = runtime_with_manual_clock(2);
        for seq in 1..=5u64 {
            clock.advance_to(hb(seq));
            rt.ingest(9, seq, hb(seq));
        }
        rt.flush();
        assert_eq!(rt.output(9), Some(FdOutput::Trust));
        // Advance far past the trust horizon; the sweeper alone must
        // publish the S-transition, stamped at the exact expiry.
        let trust_until = rt.statuses()[0].trust_until.unwrap();
        clock.advance_to(trust_until + Span::from_secs(1));
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        let mut got = Vec::new();
        while got.len() < 2 && std::time::Instant::now() < deadline {
            got.extend(rt.events().try_iter());
            thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(got.len(), 2, "{got:?}");
        assert_eq!(got[0].output, FdOutput::Trust);
        assert_eq!(got[0].at, hb(1));
        assert_eq!(got[1].output, FdOutput::Suspect);
        assert_eq!(got[1].at, trust_until);
        let stats = rt.stats();
        assert_eq!(stats.suspect(), 1);
        assert_eq!(stats.live(), 0);
        assert_eq!(stats.transitions(), 2);
    }

    #[test]
    fn stale_heartbeats_are_counted() {
        let (rt, clock) = runtime_with_manual_clock(1);
        clock.advance_to(hb(3));
        rt.ingest(1, 3, hb(3));
        rt.ingest(1, 2, hb(3)); // stale: lower seq
        rt.flush();
        assert_eq!(rt.stats().stale(), 1);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        // One shard, tiny queue, and a clock pinned at zero so the worker
        // mostly idles between sweeps while we flood the queue.
        let clock = Arc::new(ManualClock::new());
        let config = ShardConfig {
            detector: plan(),
            n_shards: 1,
            queue_capacity: 4,
            sweep_interval: Duration::from_millis(50),
            ..ShardConfig::default()
        };
        let rt = ShardRuntime::new(config, clock.clone() as Arc<dyn TimeSource>);
        for seq in 1..=10_000u64 {
            rt.ingest(1, seq, hb(seq));
        }
        rt.flush();
        let stats = rt.stats();
        assert_eq!(stats.received(), 10_000);
        assert!(stats.dropped() > 0, "{stats:?}");
        // Every heartbeat is accounted for: applied + dropped = received.
        assert_eq!(stats.dropped() + stats.applied(), 10_000);
    }

    #[test]
    fn register_before_first_heartbeat() {
        let (rt, _clock) = runtime_with_manual_clock(3);
        rt.register(42);
        assert_eq!(rt.output(42), Some(FdOutput::Suspect));
        assert_eq!(rt.output(41), None);
        assert_eq!(rt.suspected(), vec![42]);
        assert!(!rt.is_empty());
    }

    #[test]
    fn default_plan_is_the_papers_two_window() {
        use twofd_core::FailureDetector;
        assert_eq!(DetectorPlan::default().build(&0).name(), "2w-fd(1,1000)");
    }

    /// Regression (re-registration leak): deregister/re-register churn
    /// must keep the stream-count gauges exactly reconciled, and an old
    /// incarnation's queued trust horizon must never publish against
    /// the stream's new incarnation.
    #[test]
    fn churn_reconciles_gauges_and_leaks_no_expiries() {
        let (rt, clock) = runtime_with_manual_clock(2);
        clock.advance_to(hb(1));
        rt.ingest(1, 1, hb(1)); // the churned stream
        rt.ingest(2, 1, hb(1)); // a stable neighbour on the other shard
        rt.flush();
        assert_eq!(rt.len(), 2);

        let mut last_round = 1;
        for round in 2..=50u64 {
            assert!(rt.deregister(1));
            assert!(!rt.deregister(1), "double deregister must be a no-op");
            rt.register(1);
            // The fresh incarnation starts suspect and seq-blank...
            assert_eq!(rt.output(1), Some(FdOutput::Suspect));
            // ...so the same sequence number is fresh again.
            let at = hb(round);
            clock.advance_to(at);
            rt.ingest(1, round, at);
            rt.flush();
            assert_eq!(rt.len(), 2, "round {round}: stream count drifted");
            let stats = rt.stats();
            assert_eq!(
                stats.live() + stats.suspect(),
                rt.len(),
                "round {round}: gauges do not reconcile: {stats:?}"
            );
            last_round = round;
        }

        // Only the *live* incarnation's horizon may ever fire. Old
        // incarnations were deregistered while trusted: their queued
        // entries are dead and must not synthesize S-transitions.
        let final_horizon = rt
            .statuses()
            .iter()
            .find(|st| st.key == 1)
            .unwrap()
            .trust_until
            .unwrap();
        clock.advance_to(final_horizon + Span::from_secs(5));
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        let mut events = Vec::new();
        while std::time::Instant::now() < deadline {
            events.extend(rt.events().try_iter());
            let s_count = events
                .iter()
                .filter(|e| e.output == FdOutput::Suspect)
                .count();
            if s_count >= 2 {
                break;
            }
            thread::sleep(Duration::from_millis(2));
        }
        let stream1_s: Vec<_> = events
            .iter()
            .filter(|e| e.key == 1 && e.output == FdOutput::Suspect)
            .collect();
        assert_eq!(
            stream1_s.len(),
            1,
            "exactly one S for the live incarnation: {stream1_s:?}"
        );
        assert_eq!(stream1_s[0].at, final_horizon);
        // Every incarnation published its T at its heartbeat arrival.
        let stream1_t = events
            .iter()
            .filter(|e| e.key == 1 && e.output == FdOutput::Trust)
            .count();
        assert_eq!(stream1_t as u64, last_round, "one T per incarnation");
        assert_eq!(rt.events_dropped(), 0);
    }

    /// `sweep_now` must retire expired horizons synchronously — the
    /// events are in the channel the moment the call returns, with no
    /// dependence on a worker waking up. Exercised with workers parked
    /// far away so only the caller-driven sweep can plausibly run.
    #[test]
    fn sweep_now_publishes_expiries_synchronously() {
        let clock = Arc::new(ManualClock::new());
        let config = ShardConfig {
            detector: plan(),
            n_shards: 2,
            sweep_interval: Duration::from_secs(3600),
            ..ShardConfig::default()
        };
        let rt = ShardRuntime::new(config, clock.clone() as Arc<dyn TimeSource>);
        clock.advance_to(hb(1));
        rt.ingest(4, 1, hb(1));
        rt.ingest(5, 1, hb(1));
        rt.flush();
        let horizons: HashMap<u64, Nanos> = rt
            .statuses()
            .iter()
            .map(|s| (s.key, s.trust_until.unwrap()))
            .collect();
        let max_horizon = horizons.values().copied().max().unwrap();
        clock.advance_to(max_horizon + Span::from_secs(1));
        rt.sweep_now();
        // No polling loop: everything is already published.
        let events: Vec<FleetEvent> = rt.events().try_iter().collect();
        let suspects: Vec<_> = events
            .iter()
            .filter(|e| e.output == FdOutput::Suspect)
            .collect();
        assert_eq!(suspects.len(), 2, "{events:?}");
        for event in suspects {
            assert_eq!(event.at, horizons[&event.key], "exact expiry stamp");
        }
        // Idempotent: a second sweep finds nothing left to retire.
        rt.sweep_now();
        assert_eq!(rt.events().try_iter().count(), 0);
        assert_eq!(rt.events_dropped(), 0);
    }

    #[test]
    fn per_stream_plans_pick_recipes_by_stream() {
        use twofd_core::FailureDetector;
        let plan = DetectorPlan::PerStream(Arc::new(|stream: &u64| {
            let spec = if (*stream).is_multiple_of(2) {
                DetectorSpec::Chen { window: 10 }
            } else {
                DetectorSpec::default()
            };
            DetectorConfig::new(spec, DI, 0.04)
        }));
        assert_eq!(plan.build(&0).name(), "chen(10)");
        assert_eq!(plan.build(&1).name(), "2w-fd(1,1000)");
    }

    #[test]
    fn drop_joins_all_workers() {
        let (rt, clock) = runtime_with_manual_clock(8);
        clock.advance_to(hb(1));
        for stream in 0..64u64 {
            rt.ingest(stream, 1, hb(1));
        }
        drop(rt); // must not hang
    }

    #[test]
    fn registry_mirrors_stats_counters() {
        let (rt, clock) = runtime_with_manual_clock(2);
        for seq in 1..=3u64 {
            clock.advance_to(hb(seq));
            rt.ingest(7, seq, hb(seq));
        }
        rt.flush();
        let text = rt.registry().render();
        assert!(
            text.contains("twofd_shard_received_total{shard=\"1\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("twofd_shard_applied_total{shard=\"1\"} 3"),
            "{text}"
        );
        assert!(text.contains("twofd_shard_streams{shard=\"1\",state=\"live\"} 1"));
        assert!(text.contains("# TYPE twofd_sweep_duration_seconds histogram"));
        // The hook survives a runtime drop without resurrecting workers.
        let registry = rt.registry().clone();
        drop(rt);
        let _ = registry.render();
    }

    /// Crash-recovery through the sharded runtime: a suspected stream
    /// that returns with a bumped incarnation (and a reset sequence
    /// counter) is re-trusted via a `Recovered` transition, counted
    /// under its own metric direction.
    #[test]
    fn bumped_incarnation_recovers_a_suspected_stream() {
        let (rt, clock) = runtime_with_manual_clock(1);
        clock.advance_to(hb(1));
        rt.ingest_incarnated(3, 1, hb(1), 0);
        rt.flush();
        let horizon = rt.statuses()[0].trust_until.unwrap();
        clock.advance_to(horizon + Span::from_secs(1));
        rt.sweep_now();
        assert_eq!(rt.output(3), Some(FdOutput::Suspect));
        // The restarted boot resets seq to 1 — stale under incarnation
        // 0, fresh under incarnation 1.
        let restart = horizon + Span::from_secs(2);
        clock.advance_to(restart);
        rt.ingest_incarnated(3, 1, restart, 1);
        rt.flush();
        assert_eq!(rt.output(3), Some(FdOutput::Trust));
        let events: Vec<FleetEvent> = rt.events().try_iter().collect();
        let kinds: Vec<TransitionKind> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TransitionKind::Trust,
                TransitionKind::Suspect,
                TransitionKind::Recovered
            ],
            "{events:?}"
        );
        assert_eq!(events[2].at, restart);
        let stats = rt.stats();
        assert_eq!(stats.recovered(), 1);
        assert_eq!(stats.transitions(), 3);
        // A frame from the dead incarnation is stale, not applied.
        rt.ingest_incarnated(3, 50, restart + Span::from_millis(1), 0);
        rt.flush();
        assert_eq!(rt.stats().stale(), 1);
        let text = rt.registry().render();
        assert!(
            text.contains(
                "twofd_shard_transitions_total{shard=\"0\",direction=\"to_recovered\"} 1"
            ),
            "{text}"
        );
    }

    /// Digest adoption: a never-seen stream seeded from a peer's view
    /// is trusted until the relayed horizon, then suspected by the
    /// ordinary sweep — detection continues without a direct heartbeat.
    #[test]
    fn adopted_stream_expires_through_the_sweep_path() {
        let (rt, clock) = runtime_with_manual_clock(2);
        clock.advance_to(Nanos(1_000));
        let horizon = Nanos(500_000_000);
        assert!(rt.adopt(6, 2, horizon));
        // Synchronous: the Trust is already published.
        let events: Vec<FleetEvent> = rt.events().try_iter().collect();
        assert_eq!(events.len(), 1, "{events:?}");
        assert_eq!(events[0].kind, TransitionKind::Trust);
        assert_eq!(rt.output(6), Some(FdOutput::Trust));
        // Stale relayed views lose to the adopted state.
        assert!(!rt.adopt(6, 1, horizon + Span::from_secs(5)));
        assert!(!rt.adopt(6, 2, horizon - Span::from_millis(1)));
        clock.advance_to(horizon + Span::from_millis(1));
        rt.sweep_now();
        let events: Vec<FleetEvent> = rt.events().try_iter().collect();
        assert_eq!(events.len(), 1, "{events:?}");
        assert_eq!(events[0].kind, TransitionKind::Suspect);
        assert_eq!(events[0].at, horizon);
        assert_eq!(rt.output(6), Some(FdOutput::Suspect));
    }

    #[test]
    fn qos_tracking_reports_metrics_and_verdicts() {
        let clock = Arc::new(ManualClock::new());
        let config = ShardConfig {
            detector: plan(),
            n_shards: 1,
            sweep_interval: Duration::from_millis(1),
            obs: ObsOptions {
                jitter: true,
                qos: Some(QosPlan::Uniform(QosTrackerConfig::cumulative(DI))),
            },
            ..ShardConfig::default()
        };
        let rt = ShardRuntime::new(config, clock.clone() as Arc<dyn TimeSource>);
        for seq in 1..=20u64 {
            clock.advance_to(hb(seq));
            rt.ingest(5, seq, hb(seq));
            rt.flush();
        }
        let metrics = rt.qos_metrics(5).expect("tracker attached");
        assert_eq!(metrics.mistakes, 0);
        assert!((metrics.query_accuracy - 1.0).abs() < 1e-9);
        assert!(rt.qos_verdict(5).expect("tracker attached").met);
        assert!(rt.qos_metrics(999).is_none(), "unseen stream");
        let text = rt.registry().render();
        assert!(
            text.contains("twofd_qos_query_accuracy{stream=\"5\"} 1"),
            "{text}"
        );
        assert!(text.contains("twofd_interarrival_seconds_count{shard=\"0\"}"));
    }
}
