//! Sharded monitor runtime for high-cardinality fleets.
//!
//! The original fleet monitor funneled every datagram through a single
//! `Mutex<ProcessSet>`: one lock serializing ingestion, queries and (had
//! it existed) expiry sweeping across the whole fleet. This module
//! partitions that state by stream id:
//!
//! ```text
//!             ingest(stream, seq, arrival)
//!                        │  route: stream % n_shards
//!        ┌───────────────┼───────────────┐
//!   [bounded q]     [bounded q]     [bounded q]     force_send:
//!        │               │               │          drop-oldest +
//!   shard worker    shard worker    shard worker    per-shard counter
//!   own ProcessSet  own ProcessSet  own ProcessSet
//!   + sweeper       + sweeper       + sweeper
//!        └───────────────┴───────────────┘
//!                 bounded events channel (counted drops)
//! ```
//!
//! * **No cross-shard locking** — each shard worker owns its own
//!   [`ProcessSet`]; a shard's mutex is only ever contended between that
//!   worker and direct queries against the same shard.
//! * **Bounded everything** — ingestion never blocks: a full shard queue
//!   drops its *oldest* heartbeat (the one a fresher heartbeat from the
//!   same regime supersedes anyway — sequence-number freshness makes
//!   drop-oldest strictly better than drop-newest here) and counts it.
//!   The event channel drops (and counts) on overflow instead of growing
//!   without bound.
//! * **Proactive freshness sweeping** — each worker sweeps its shard's
//!   expiry heap between batches, publishing Trust→Suspect transitions
//!   at the exact `trust_until` instant without anyone querying.
//!
//! Because transitions carry exact timestamps (see
//! [`twofd_core::multi`]), the per-stream event timeline is a pure
//! function of the heartbeat schedule — scheduling jitter between
//! workers and sweepers cannot change it. The `shard_equivalence`
//! integration test exploits this to check the sharded runtime against
//! the sequential replay oracle event-for-event.

use crate::clock::TimeSource;
use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError, TrySendError};
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;
use twofd_core::{
    AnyDetector, DetectorBuilder, DetectorConfig, FdOutput, ProcessSet, ProcessStatus,
    StreamTransition,
};
use twofd_sim::time::Nanos;

/// A Trust/Suspect transition of one monitored stream, as published by
/// the sharded runtime.
pub type FleetEvent = StreamTransition<u64>;

/// How a shard builds the detector for a newly seen stream.
///
/// Every path goes through [`DetectorConfig`] — and therefore through
/// `DetectorSpec`, the workspace's single construction recipe — so the
/// per-stream detectors are inline [`AnyDetector`] values: no per-stream
/// heap allocation, no vtable on the heartbeat hot path.
#[derive(Clone)]
pub enum DetectorPlan {
    /// Every stream gets the same recipe (the common case).
    Uniform(DetectorConfig),
    /// Per-stream recipes, e.g. per-tenant QoS tiers. The closure
    /// returns a *config*, not a detector, so construction still goes
    /// through the one spec-based path.
    PerStream(Arc<dyn Fn(&u64) -> DetectorConfig + Send + Sync>),
}

impl DetectorPlan {
    /// The recipe used for stream `stream`.
    pub fn config_for(&self, stream: &u64) -> DetectorConfig {
        match self {
            DetectorPlan::Uniform(config) => config.clone(),
            DetectorPlan::PerStream(f) => f(stream),
        }
    }
}

impl Default for DetectorPlan {
    /// The paper's configuration: `2w-fd(1,1000)` at the default
    /// interval/margin of [`DetectorConfig::default`].
    fn default() -> Self {
        DetectorPlan::Uniform(DetectorConfig::default())
    }
}

impl From<DetectorConfig> for DetectorPlan {
    fn from(config: DetectorConfig) -> Self {
        DetectorPlan::Uniform(config)
    }
}

impl fmt::Debug for DetectorPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectorPlan::Uniform(config) => f.debug_tuple("Uniform").field(config).finish(),
            DetectorPlan::PerStream(_) => f.debug_tuple("PerStream").field(&"<fn>").finish(),
        }
    }
}

impl DetectorBuilder<u64> for DetectorPlan {
    type Detector = AnyDetector;

    fn build(&self, stream: &u64) -> AnyDetector {
        self.config_for(stream).build()
    }
}

/// Tuning knobs of the sharded runtime, including which detector runs
/// on each stream.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// How to build the detector for a newly seen stream. Defaults to
    /// the paper's `2w-fd(1,1000)` recipe.
    pub detector: DetectorPlan,
    /// Number of shard workers (streams are routed by `id % n_shards`).
    pub n_shards: usize,
    /// Per-shard heartbeat queue capacity; overflow drops the oldest
    /// queued heartbeat and counts it.
    pub queue_capacity: usize,
    /// How long an idle worker sleeps between queue polls and expiry
    /// sweeps. Bounds the wall-time lag between a heartbeat's enqueue
    /// and its processing, and how late an S-transition is *published*;
    /// event timestamps are exact regardless. Workers poll rather than
    /// park on the queue so the ingest path never pays a wakeup.
    pub sweep_interval: Duration,
    /// Capacity of the shared transition-event channel; overflow drops
    /// the newest event and counts it.
    pub event_capacity: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            detector: DetectorPlan::default(),
            n_shards: 4,
            queue_capacity: 1024,
            sweep_interval: Duration::from_millis(5),
            event_capacity: 4096,
        }
    }
}

/// One heartbeat routed to a shard.
type Job = (u64, u64, Nanos); // (stream, seq, arrival)

/// Largest number of heartbeats a worker applies under one lock
/// acquisition. Batching amortizes locking; the cap keeps queries from
/// starving under sustained floods.
const MAX_BATCH: usize = 512;

struct ShardShared {
    set: Mutex<ProcessSet<u64, DetectorPlan>>,
    /// Heartbeats routed to this shard.
    received: AtomicU64,
    /// Heartbeats evicted by drop-oldest backpressure.
    dropped: AtomicU64,
    /// Heartbeats applied by the worker (fresh + stale).
    processed: AtomicU64,
    /// Stale (duplicate/reordered) heartbeats ignored by detectors.
    stale: AtomicU64,
    /// Suspect→Trust transitions published.
    to_trust: AtomicU64,
    /// Trust→Suspect transitions published.
    to_suspect: AtomicU64,
}

struct Shard {
    tx: Option<Sender<Job>>,
    shared: Arc<ShardShared>,
    worker: Option<JoinHandle<()>>,
}

/// Observability snapshot of one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Heartbeats routed to this shard.
    pub received: u64,
    /// Heartbeats evicted by drop-oldest backpressure.
    pub dropped: u64,
    /// Stale heartbeats ignored by detectors.
    pub stale: u64,
    /// Heartbeats currently queued, awaiting the worker.
    pub queue_depth: usize,
    /// Streams owned by this shard.
    pub streams: usize,
    /// Streams currently output `Trust`.
    pub live: usize,
    /// Streams currently output `Suspect`.
    pub suspect: usize,
    /// Suspect→Trust transitions published so far.
    pub to_trust: u64,
    /// Trust→Suspect transitions published so far.
    pub to_suspect: u64,
}

/// Observability snapshot of the whole runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Per-shard breakdown, indexed by shard.
    pub shards: Vec<ShardStats>,
    /// Transition events dropped because the event channel was full.
    pub events_dropped: u64,
}

impl RuntimeStats {
    /// Total heartbeats routed.
    pub fn received(&self) -> u64 {
        self.shards.iter().map(|s| s.received).sum()
    }

    /// Total heartbeats dropped by backpressure.
    pub fn dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped).sum()
    }

    /// Total stale heartbeats ignored.
    pub fn stale(&self) -> u64 {
        self.shards.iter().map(|s| s.stale).sum()
    }

    /// Total monitored streams.
    pub fn streams(&self) -> usize {
        self.shards.iter().map(|s| s.streams).sum()
    }

    /// Streams currently trusted, fleet-wide.
    pub fn live(&self) -> usize {
        self.shards.iter().map(|s| s.live).sum()
    }

    /// Streams currently suspected, fleet-wide.
    pub fn suspect(&self) -> usize {
        self.shards.iter().map(|s| s.suspect).sum()
    }

    /// Total transitions published (both directions).
    pub fn transitions(&self) -> u64 {
        self.shards.iter().map(|s| s.to_trust + s.to_suspect).sum()
    }
}

/// The socket-free sharded monitor core.
///
/// [`ShardRuntime::ingest`] routes timestamped heartbeats to per-stream
/// detectors across `n_shards` worker threads; queries and the
/// [`ShardRuntime::events`] channel read the results. The UDP layer
/// ([`crate::fleet::FleetMonitor`]) is a thin shell around this.
pub struct ShardRuntime {
    shards: Vec<Shard>,
    events_rx: Receiver<FleetEvent>,
    events_dropped: Arc<AtomicU64>,
    clock: Arc<dyn TimeSource>,
}

impl ShardRuntime {
    /// Starts `config.n_shards` workers building detectors per
    /// `config.detector` and reading sweep times from `clock`.
    ///
    /// # Panics
    /// If `n_shards` or `queue_capacity` is zero.
    pub fn new(config: ShardConfig, clock: Arc<dyn TimeSource>) -> Self {
        assert!(config.n_shards > 0, "need at least one shard");
        assert!(
            config.queue_capacity > 0,
            "shard queues must hold something"
        );
        let (events_tx, events_rx) = bounded(config.event_capacity.max(1));
        let events_dropped = Arc::new(AtomicU64::new(0));

        let shards = (0..config.n_shards)
            .map(|i| {
                let (tx, rx) = bounded::<Job>(config.queue_capacity);
                let shared = Arc::new(ShardShared {
                    set: Mutex::new(ProcessSet::new(config.detector.clone())),
                    received: AtomicU64::new(0),
                    dropped: AtomicU64::new(0),
                    processed: AtomicU64::new(0),
                    stale: AtomicU64::new(0),
                    to_trust: AtomicU64::new(0),
                    to_suspect: AtomicU64::new(0),
                });
                let worker = {
                    let shared = Arc::clone(&shared);
                    let events_tx = events_tx.clone();
                    let events_dropped = Arc::clone(&events_dropped);
                    let clock = Arc::clone(&clock);
                    let sweep_interval = config.sweep_interval;
                    thread::Builder::new()
                        .name(format!("twofd-shard-{i}"))
                        .spawn(move || {
                            shard_worker(
                                shared,
                                rx,
                                events_tx,
                                events_dropped,
                                clock,
                                sweep_interval,
                            )
                        })
                        .expect("spawn shard worker")
                };
                Shard {
                    tx: Some(tx),
                    shared,
                    worker: Some(worker),
                }
            })
            .collect();

        ShardRuntime {
            shards,
            events_rx,
            events_dropped,
            clock,
        }
    }

    fn shard_of(&self, stream: u64) -> &Shard {
        &self.shards[(stream % self.shards.len() as u64) as usize]
    }

    /// Routes one decoded, timestamped heartbeat to its shard. Never
    /// blocks: a full shard queue evicts its oldest heartbeat and counts
    /// the drop.
    pub fn ingest(&self, stream: u64, seq: u64, arrival: Nanos) {
        let shard = self.shard_of(stream);
        shard.shared.received.fetch_add(1, Ordering::Relaxed);
        match shard
            .tx
            .as_ref()
            .expect("runtime is live")
            .force_send((stream, seq, arrival))
        {
            Ok(Some(_displaced)) => {
                shard.shared.dropped.fetch_add(1, Ordering::Relaxed);
            }
            Ok(None) => {}
            Err(_) => {} // worker already shut down
        }
    }

    /// Pre-registers a stream so it is reported (as suspect) before its
    /// first heartbeat.
    pub fn register(&self, stream: u64) {
        self.shard_of(stream).shared.set.lock().register(stream);
    }

    /// Current output for one stream (`None` if never seen/registered).
    pub fn output(&self, stream: u64) -> Option<FdOutput> {
        let now = self.clock.now();
        self.shard_of(stream).shared.set.lock().output(&stream, now)
    }

    /// Status snapshot of every monitored stream, across all shards.
    pub fn statuses(&self) -> Vec<ProcessStatus<u64>> {
        let now = self.clock.now();
        self.shards
            .iter()
            .flat_map(|s| s.shared.set.lock().statuses(now))
            .collect()
    }

    /// Streams currently suspected, across all shards.
    pub fn suspected(&self) -> Vec<u64> {
        let now = self.clock.now();
        self.shards
            .iter()
            .flat_map(|s| s.shared.set.lock().suspected(now))
            .collect()
    }

    /// Number of streams currently monitored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.shared.set.lock().len()).sum()
    }

    /// True when no stream is monitored.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.shared.set.lock().is_empty())
    }

    /// The stream of Trust/Suspect transitions, timestamped exactly.
    pub fn events(&self) -> &Receiver<FleetEvent> {
        &self.events_rx
    }

    /// Transition events dropped because the event channel was full.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped.load(Ordering::Relaxed)
    }

    /// Observability snapshot: per-shard counters, queue depths and
    /// live/suspect tallies.
    pub fn stats(&self) -> RuntimeStats {
        let now = self.clock.now();
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let (streams, live, suspect, queue_depth) = {
                    let set = s.shared.set.lock();
                    let (live, suspect) = set.counts(now);
                    let depth = s.tx.as_ref().map(|tx| tx.len()).unwrap_or(0);
                    (set.len(), live, suspect, depth)
                };
                ShardStats {
                    shard: i,
                    received: s.shared.received.load(Ordering::Relaxed),
                    dropped: s.shared.dropped.load(Ordering::Relaxed),
                    stale: s.shared.stale.load(Ordering::Relaxed),
                    queue_depth,
                    streams,
                    live,
                    suspect,
                    to_trust: s.shared.to_trust.load(Ordering::Relaxed),
                    to_suspect: s.shared.to_suspect.load(Ordering::Relaxed),
                }
            })
            .collect();
        RuntimeStats {
            shards,
            events_dropped: self.events_dropped(),
        }
    }

    /// Blocks until every heartbeat ingested *before this call* has been
    /// applied by its shard worker (dropped heartbeats count as handled).
    /// Benches and deterministic tests use this as a barrier.
    pub fn flush(&self) {
        loop {
            let behind = self.shards.iter().any(|s| {
                let shared = &s.shared;
                let received = shared.received.load(Ordering::SeqCst);
                let dropped = shared.dropped.load(Ordering::SeqCst);
                let processed = shared.processed.load(Ordering::SeqCst);
                processed + dropped < received
            });
            if !behind {
                return;
            }
            thread::sleep(Duration::from_micros(200));
        }
    }
}

impl Drop for ShardRuntime {
    fn drop(&mut self) {
        for shard in &mut self.shards {
            shard.tx.take(); // disconnects the queue; worker drains and exits
        }
        for shard in &mut self.shards {
            if let Some(handle) = shard.worker.take() {
                let _ = handle.join();
            }
        }
    }
}

fn shard_worker(
    shared: Arc<ShardShared>,
    rx: Receiver<Job>,
    events_tx: Sender<FleetEvent>,
    events_dropped: Arc<AtomicU64>,
    clock: Arc<dyn TimeSource>,
    sweep_interval: Duration,
) {
    let mut events: Vec<FleetEvent> = Vec::new();
    loop {
        // Read the sweep time *before* draining: anything enqueued before
        // the clock reached `now` is applied first, so the sweep can
        // never expire a horizon that a queued heartbeat extends.
        let now = clock.now();
        let mut disconnected = false;
        let mut drained_all = true;
        let mut batch = 0usize;
        {
            let mut set = shared.set.lock();
            loop {
                if batch >= MAX_BATCH {
                    // Queue may still hold heartbeats: sweeping now
                    // could mis-order against them. Sweep next pass.
                    drained_all = rx.is_empty();
                    break;
                }
                match rx.try_recv() {
                    Ok(job) => {
                        apply(&mut set, &shared, job, &mut events);
                        batch += 1;
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        disconnected = true;
                        break;
                    }
                }
            }
            if drained_all {
                set.sweep(now, &mut events);
            }
        }
        publish(&shared, &events_tx, &events_dropped, &mut events);
        if disconnected {
            return;
        }
        if batch == 0 {
            // Idle: poll again after the sweep interval. Polling instead
            // of parking on the queue keeps `ingest` wakeup-free.
            thread::sleep(sweep_interval);
        }
    }
}

fn apply(
    set: &mut ProcessSet<u64, DetectorPlan>,
    shared: &ShardShared,
    (stream, seq, arrival): Job,
    events: &mut Vec<FleetEvent>,
) {
    if set
        .on_heartbeat_with_events(stream, seq, arrival, events)
        .is_none()
    {
        shared.stale.fetch_add(1, Ordering::Relaxed);
    }
    shared.processed.fetch_add(1, Ordering::SeqCst);
}

fn publish(
    shared: &ShardShared,
    events_tx: &Sender<FleetEvent>,
    events_dropped: &AtomicU64,
    events: &mut Vec<FleetEvent>,
) {
    for event in events.drain(..) {
        match event.output {
            FdOutput::Trust => shared.to_trust.fetch_add(1, Ordering::Relaxed),
            FdOutput::Suspect => shared.to_suspect.fetch_add(1, Ordering::Relaxed),
        };
        if let Err(TrySendError::Full(_)) = events_tx.try_send(event) {
            events_dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use twofd_core::DetectorSpec;
    use twofd_sim::time::Span;

    const DI: Span = Span(100_000_000); // 100 ms

    fn plan() -> DetectorPlan {
        DetectorConfig::new(DetectorSpec::TwoWindow { n1: 1, n2: 100 }, DI, 0.04).into()
    }

    fn runtime_with_manual_clock(n_shards: usize) -> (ShardRuntime, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let config = ShardConfig {
            detector: plan(),
            n_shards,
            sweep_interval: Duration::from_millis(1),
            ..ShardConfig::default()
        };
        let rt = ShardRuntime::new(config, clock.clone() as Arc<dyn TimeSource>);
        (rt, clock)
    }

    fn hb(seq: u64) -> Nanos {
        Nanos(seq * DI.0 + 10_000_000)
    }

    #[test]
    fn routes_streams_across_shards() {
        let (rt, clock) = runtime_with_manual_clock(4);
        for stream in 0..8u64 {
            clock.advance_to(hb(1));
            rt.ingest(stream, 1, hb(1));
        }
        rt.flush();
        assert_eq!(rt.len(), 8);
        let stats = rt.stats();
        assert_eq!(stats.shards.len(), 4);
        // stream % 4 routing: two streams per shard.
        for s in &stats.shards {
            assert_eq!(s.streams, 2, "{stats:?}");
            assert_eq!(s.received, 2);
        }
        assert_eq!(stats.received(), 8);
        assert_eq!(stats.dropped(), 0);
    }

    #[test]
    fn sweeper_publishes_suspicion_without_queries() {
        let (rt, clock) = runtime_with_manual_clock(2);
        for seq in 1..=5u64 {
            clock.advance_to(hb(seq));
            rt.ingest(9, seq, hb(seq));
        }
        rt.flush();
        assert_eq!(rt.output(9), Some(FdOutput::Trust));
        // Advance far past the trust horizon; the sweeper alone must
        // publish the S-transition, stamped at the exact expiry.
        let trust_until = rt.statuses()[0].trust_until.unwrap();
        clock.advance_to(trust_until + Span::from_secs(1));
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        let mut got = Vec::new();
        while got.len() < 2 && std::time::Instant::now() < deadline {
            got.extend(rt.events().try_iter());
            thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(got.len(), 2, "{got:?}");
        assert_eq!(got[0].output, FdOutput::Trust);
        assert_eq!(got[0].at, hb(1));
        assert_eq!(got[1].output, FdOutput::Suspect);
        assert_eq!(got[1].at, trust_until);
        let stats = rt.stats();
        assert_eq!(stats.suspect(), 1);
        assert_eq!(stats.live(), 0);
        assert_eq!(stats.transitions(), 2);
    }

    #[test]
    fn stale_heartbeats_are_counted() {
        let (rt, clock) = runtime_with_manual_clock(1);
        clock.advance_to(hb(3));
        rt.ingest(1, 3, hb(3));
        rt.ingest(1, 2, hb(3)); // stale: lower seq
        rt.flush();
        assert_eq!(rt.stats().stale(), 1);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        // One shard, tiny queue, and a clock pinned at zero so the worker
        // mostly idles between 1 ms sweeps while we flood the queue.
        let clock = Arc::new(ManualClock::new());
        let config = ShardConfig {
            detector: plan(),
            n_shards: 1,
            queue_capacity: 4,
            sweep_interval: Duration::from_millis(50),
            ..ShardConfig::default()
        };
        let rt = ShardRuntime::new(config, clock.clone() as Arc<dyn TimeSource>);
        for seq in 1..=10_000u64 {
            rt.ingest(1, seq, hb(seq));
        }
        rt.flush();
        let stats = rt.stats();
        assert_eq!(stats.received(), 10_000);
        assert!(stats.dropped() > 0, "{stats:?}");
        // Every heartbeat is accounted for: processed + dropped = received.
        assert_eq!(
            stats.dropped() + rt.shards[0].shared.processed.load(Ordering::SeqCst),
            10_000
        );
    }

    #[test]
    fn register_before_first_heartbeat() {
        let (rt, _clock) = runtime_with_manual_clock(3);
        rt.register(42);
        assert_eq!(rt.output(42), Some(FdOutput::Suspect));
        assert_eq!(rt.output(41), None);
        assert_eq!(rt.suspected(), vec![42]);
        assert!(!rt.is_empty());
    }

    #[test]
    fn default_plan_is_the_papers_two_window() {
        use twofd_core::FailureDetector;
        assert_eq!(DetectorPlan::default().build(&0).name(), "2w-fd(1,1000)");
    }

    #[test]
    fn per_stream_plans_pick_recipes_by_stream() {
        use twofd_core::FailureDetector;
        let plan = DetectorPlan::PerStream(Arc::new(|stream: &u64| {
            let spec = if *stream % 2 == 0 {
                DetectorSpec::Chen { window: 10 }
            } else {
                DetectorSpec::default()
            };
            DetectorConfig::new(spec, DI, 0.04)
        }));
        assert_eq!(plan.build(&0).name(), "chen(10)");
        assert_eq!(plan.build(&1).name(), "2w-fd(1,1000)");
    }

    #[test]
    fn drop_joins_all_workers() {
        let (rt, clock) = runtime_with_manual_clock(8);
        clock.advance_to(hb(1));
        for stream in 0..64u64 {
            rt.ingest(stream, 1, hb(1));
        }
        drop(rt); // must not hang
    }
}
