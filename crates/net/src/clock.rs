//! Monotonic wall-clock adapter.
//!
//! The detectors operate on [`Nanos`] instants; the live transport maps
//! `std::time::Instant` onto that axis with an arbitrary per-process
//! origin. Sender and monitor deliberately have *independent* origins —
//! exactly the unsynchronized-clocks setting of the paper — which the
//! algorithms tolerate by construction (Eq. 2 estimates expected
//! arrivals from receiver-side timestamps only, and `V(D)` is
//! skew-invariant).
//!
//! [`SkewedClock`] scripts that setting deliberately: it wraps any base
//! [`TimeSource`] with a fixed origin offset and a parts-per-million
//! drift rate, so tests and the cluster simulator can hand each node a
//! clock that disagrees with every other node's — and verify the
//! detectors genuinely never compare timestamps across clock domains.

// The `twofd_check` cfg swaps the clock's atomic for the instrumented
// model-checker shim, so the `clock_model` suite can exhaust the
// interleavings of `advance_to` against concurrent readers.
#[cfg(not(twofd_check))]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(twofd_check)]
use twofd_check::sync::atomic::{AtomicU64, Ordering};

use std::sync::Arc;
use std::time::Instant;
use twofd_sim::time::{Nanos, Span};

/// A source of monotone [`Nanos`] instants.
///
/// The sharded monitor runtime reads its sweep times through this trait
/// so production code runs on a [`MonotonicClock`] while deterministic
/// tests drive the exact same runtime from a [`ManualClock`].
pub trait TimeSource: Send + Sync {
    /// The current instant on this source's axis.
    fn now(&self) -> Nanos;
}

/// A monotonic clock with a fixed origin.
#[derive(Debug, Clone, Copy)]
pub struct MonotonicClock {
    origin: Instant,
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl MonotonicClock {
    /// Creates a clock whose origin is "now".
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the clock's origin.
    pub fn now(&self) -> Nanos {
        Nanos(self.origin.elapsed().as_nanos() as u64)
    }
}

impl TimeSource for MonotonicClock {
    fn now(&self) -> Nanos {
        MonotonicClock::now(self)
    }
}

/// A manually advanced clock for deterministic tests and replays.
///
/// Starts at zero and only moves when told to; [`ManualClock::advance_to`]
/// is monotone (attempts to move backwards are ignored), so concurrent
/// readers always observe a non-decreasing time axis.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// Creates a clock reading zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock to `t` (no-op if `t` is in the past).
    pub fn advance_to(&self, t: Nanos) {
        // Release (the AcqRel store half) pairs with the Acquire in
        // `now`: a reader that observes the advanced value also sees
        // every write the advancing thread made before the advance —
        // e.g. heartbeats enqueued before the clock reached their
        // arrival times, the invariant the deterministic drivers rely
        // on. The Acquire half orders chained `advance_to` calls from
        // different threads. SeqCst bought nothing on top: no reader
        // compares orderings across more than this one location.
        self.now.fetch_max(t.0, Ordering::AcqRel);
    }

    /// The current manual time.
    pub fn now(&self) -> Nanos {
        Nanos(self.now.load(Ordering::Acquire))
    }
}

impl TimeSource for ManualClock {
    fn now(&self) -> Nanos {
        ManualClock::now(self)
    }
}

/// A [`TimeSource`] reading another source through a fixed origin
/// offset and a parts-per-million drift rate.
///
/// Reads `offset + base · (1 + drift_ppm / 10⁶)`: positive `drift_ppm`
/// runs fast, negative runs slow. With a monotone base and
/// `drift_ppm > -1_000_000` the skewed axis is monotone too. This is
/// the paper's unsynchronized-clocks setting made scriptable — hand
/// each sender (or monitor) a differently skewed view of one underlying
/// clock and the per-node axes disagree exactly like independent
/// hardware clocks would.
pub struct SkewedClock {
    base: Arc<dyn TimeSource>,
    offset: Span,
    drift_ppm: i64,
}

impl SkewedClock {
    /// Wraps `base` with an origin `offset` and `drift_ppm` drift.
    ///
    /// # Panics
    /// If `drift_ppm <= -1_000_000` (time would stop or reverse).
    pub fn new(base: Arc<dyn TimeSource>, offset: Span, drift_ppm: i64) -> Self {
        assert!(
            drift_ppm > -1_000_000,
            "drift must leave the clock moving forward"
        );
        SkewedClock {
            base,
            offset,
            drift_ppm,
        }
    }

    /// The configured origin offset.
    pub fn offset(&self) -> Span {
        self.offset
    }

    /// The configured drift, in parts per million.
    pub fn drift_ppm(&self) -> i64 {
        self.drift_ppm
    }
}

impl TimeSource for SkewedClock {
    fn now(&self) -> Nanos {
        let base = self.base.now().0 as i128;
        let scaled = base * (1_000_000 + self.drift_ppm as i128) / 1_000_000;
        Nanos(self.offset.0.saturating_add(scaled as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread::sleep;
    use std::time::Duration;

    #[test]
    fn clock_is_monotone() {
        let clock = MonotonicClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn clock_advances_with_real_time() {
        let clock = MonotonicClock::new();
        let a = clock.now();
        sleep(Duration::from_millis(10));
        let b = clock.now();
        assert!((b - a) >= twofd_sim::time::Span::from_millis(9));
    }

    #[test]
    fn manual_clock_only_moves_forward() {
        let c = ManualClock::new();
        assert_eq!(c.now(), Nanos(0));
        c.advance_to(Nanos(500));
        assert_eq!(c.now(), Nanos(500));
        c.advance_to(Nanos(100)); // ignored: monotone
        assert_eq!(c.now(), Nanos(500));
        let dynamic: &dyn TimeSource = &c;
        assert_eq!(dynamic.now(), Nanos(500));
    }

    #[test]
    fn skewed_clock_applies_offset_and_drift() {
        let manual = Arc::new(ManualClock::new());
        let fast = SkewedClock::new(
            Arc::clone(&manual) as Arc<dyn TimeSource>,
            Span::from_secs(5),
            100_000, // +10%
        );
        let slow = SkewedClock::new(
            Arc::clone(&manual) as Arc<dyn TimeSource>,
            Span::ZERO,
            -500_000, // -50%
        );
        assert_eq!(fast.now(), Nanos::from_secs(5));
        assert_eq!(slow.now(), Nanos::ZERO);
        manual.advance_to(Nanos::from_secs(10));
        assert_eq!(fast.now(), Nanos::from_secs(5) + Span::from_secs(11));
        assert_eq!(slow.now(), Nanos::from_secs(5));
        assert_eq!(fast.offset(), Span::from_secs(5));
        assert_eq!(slow.drift_ppm(), -500_000);
    }

    #[test]
    #[should_panic(expected = "moving forward")]
    fn skewed_clock_rejects_reversing_drift() {
        let manual = Arc::new(ManualClock::new());
        let _ = SkewedClock::new(manual, Span::ZERO, -1_000_000);
    }

    #[test]
    fn independent_clocks_have_independent_origins() {
        let c1 = MonotonicClock::new();
        sleep(Duration::from_millis(5));
        let c2 = MonotonicClock::new();
        // c1 has been running longer, so it reads a larger value.
        assert!(c1.now() > c2.now());
    }
}
