//! Monotonic wall-clock adapter.
//!
//! The detectors operate on [`Nanos`] instants; the live transport maps
//! `std::time::Instant` onto that axis with an arbitrary per-process
//! origin. Sender and monitor deliberately have *independent* origins —
//! exactly the unsynchronized-clocks setting of the paper — which the
//! algorithms tolerate by construction (Eq. 2 estimates expected
//! arrivals from receiver-side timestamps only, and `V(D)` is
//! skew-invariant).

use std::time::Instant;
use twofd_sim::time::Nanos;

/// A monotonic clock with a fixed origin.
#[derive(Debug, Clone, Copy)]
pub struct MonotonicClock {
    origin: Instant,
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl MonotonicClock {
    /// Creates a clock whose origin is "now".
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the clock's origin.
    pub fn now(&self) -> Nanos {
        Nanos(self.origin.elapsed().as_nanos() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread::sleep;
    use std::time::Duration;

    #[test]
    fn clock_is_monotone() {
        let clock = MonotonicClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn clock_advances_with_real_time() {
        let clock = MonotonicClock::new();
        let a = clock.now();
        sleep(Duration::from_millis(10));
        let b = clock.now();
        assert!((b - a) >= twofd_sim::time::Span::from_millis(9));
    }

    #[test]
    fn independent_clocks_have_independent_origins() {
        let c1 = MonotonicClock::new();
        sleep(Duration::from_millis(5));
        let c2 = MonotonicClock::new();
        // c1 has been running longer, so it reads a larger value.
        assert!(c1.now() > c2.now());
    }
}
