//! Monotonic wall-clock adapter.
//!
//! The detectors operate on [`Nanos`] instants; the live transport maps
//! `std::time::Instant` onto that axis with an arbitrary per-process
//! origin. Sender and monitor deliberately have *independent* origins —
//! exactly the unsynchronized-clocks setting of the paper — which the
//! algorithms tolerate by construction (Eq. 2 estimates expected
//! arrivals from receiver-side timestamps only, and `V(D)` is
//! skew-invariant).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use twofd_sim::time::Nanos;

/// A source of monotone [`Nanos`] instants.
///
/// The sharded monitor runtime reads its sweep times through this trait
/// so production code runs on a [`MonotonicClock`] while deterministic
/// tests drive the exact same runtime from a [`ManualClock`].
pub trait TimeSource: Send + Sync {
    /// The current instant on this source's axis.
    fn now(&self) -> Nanos;
}

/// A monotonic clock with a fixed origin.
#[derive(Debug, Clone, Copy)]
pub struct MonotonicClock {
    origin: Instant,
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl MonotonicClock {
    /// Creates a clock whose origin is "now".
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the clock's origin.
    pub fn now(&self) -> Nanos {
        Nanos(self.origin.elapsed().as_nanos() as u64)
    }
}

impl TimeSource for MonotonicClock {
    fn now(&self) -> Nanos {
        MonotonicClock::now(self)
    }
}

/// A manually advanced clock for deterministic tests and replays.
///
/// Starts at zero and only moves when told to; [`ManualClock::advance_to`]
/// is monotone (attempts to move backwards are ignored), so concurrent
/// readers always observe a non-decreasing time axis.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// Creates a clock reading zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock to `t` (no-op if `t` is in the past).
    pub fn advance_to(&self, t: Nanos) {
        self.now.fetch_max(t.0, Ordering::SeqCst);
    }

    /// The current manual time.
    pub fn now(&self) -> Nanos {
        Nanos(self.now.load(Ordering::SeqCst))
    }
}

impl TimeSource for ManualClock {
    fn now(&self) -> Nanos {
        ManualClock::now(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread::sleep;
    use std::time::Duration;

    #[test]
    fn clock_is_monotone() {
        let clock = MonotonicClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn clock_advances_with_real_time() {
        let clock = MonotonicClock::new();
        let a = clock.now();
        sleep(Duration::from_millis(10));
        let b = clock.now();
        assert!((b - a) >= twofd_sim::time::Span::from_millis(9));
    }

    #[test]
    fn manual_clock_only_moves_forward() {
        let c = ManualClock::new();
        assert_eq!(c.now(), Nanos(0));
        c.advance_to(Nanos(500));
        assert_eq!(c.now(), Nanos(500));
        c.advance_to(Nanos(100)); // ignored: monotone
        assert_eq!(c.now(), Nanos(500));
        let dynamic: &dyn TimeSource = &c;
        assert_eq!(dynamic.now(), Nanos(500));
    }

    #[test]
    fn independent_clocks_have_independent_origins() {
        let c1 = MonotonicClock::new();
        sleep(Duration::from_millis(5));
        let c2 = MonotonicClock::new();
        // c1 has been running longer, so it reads a larger value.
        assert!(c1.now() > c2.now());
    }
}
