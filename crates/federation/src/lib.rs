//! Federation tier: a digest-relay monitor fleet with crash-recovery
//! semantics.
//!
//! The base runtime (`twofd-net`) scales one monitor to many streams;
//! this crate scales *monitors* to many monitors, following the
//! large-scale architecture of Dobre et al. and the crash-recovery
//! model of Reis & Vieira:
//!
//! * [`digest`] — the `2WDG` wire format: one datagram summarizing a
//!   monitor's per-stream liveness state (stream, incarnation, trust
//!   horizon, verdict), relayed over the same
//!   [`Transport`](twofd_net::Transport) seam heartbeats use.
//! * [`relay`] — the [`Federation`] state machine. Digest arrivals are
//!   heartbeats of the sending monitor, fed to per-peer detectors
//!   configured from the service registry's strictest-QoS combination —
//!   monitors monitor monitors with the same QoS calculus as streams.
//!   When a peer dies, its last relayed view is adopted
//!   ([`Adoption`] → `ShardRuntime::adopt`) so detection of its
//!   streams continues across the crash.
//! * [`group`] — the Impact FD's set-valued aggregation
//!   ([`ImpactGroup`]): per-process impact factors summed over the
//!   trusted set, accepted against a threshold, computable over a local
//!   or federated view.
//!
//! Everything here is deterministic and clock-free (explicit `now`
//! parameters), so the whole protocol replays bit-identically inside
//! the virtual-time cluster simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
pub mod group;
pub mod relay;

pub use digest::{
    DigestEntry, DigestError, LivenessDigest, DIGEST_ENTRY_SIZE, DIGEST_HEADER, DIGEST_MAGIC,
    DIGEST_VERSION,
};
pub use group::{ImpactAssessment, ImpactGroup};
pub use relay::{Adoption, Federation, FederationConfig};

#[cfg(test)]
mod integration {
    //! Two federated monitors over the in-memory transport: A digests
    //! its streams to B until it crashes; B detects the silence and
    //! adopts A's view into a real `ShardRuntime`, so A's streams stay
    //! under detection and expire through B's sweep path.

    use crate::{Federation, FederationConfig, LivenessDigest};
    use std::sync::Arc;
    use twofd_core::{DetectorConfig, DetectorSpec, FdOutput};
    use twofd_net::{sim_channel, ManualClock, SenderTransport, ShardConfig, ShardRuntime};
    use twofd_net::{TimeSource, Transport};
    use twofd_obs::Registry;
    use twofd_sim::time::{Nanos, Span};

    const MS: u64 = 1_000_000;
    const DIGEST_EVERY: u64 = 200 * MS;

    fn federation(local: u64) -> Federation {
        let mut f = Federation::new(
            FederationConfig {
                local,
                digest_interval: Span(DIGEST_EVERY),
            },
            &Registry::new(),
        );
        let peer_recipe =
            DetectorConfig::new(DetectorSpec::Chen { window: 1 }, Span(DIGEST_EVERY), 0.1);
        f.register_peer(3 - local, &peer_recipe);
        f
    }

    #[test]
    fn adoption_continues_detection_across_a_monitor_crash() {
        // Monitor A (id 1) owns streams 100 and 101; monitor B (id 2)
        // owns nothing but watches A through its digests.
        let mut a = federation(1);
        let mut b = federation(2);
        let (mut a_out, mut b_in) = sim_channel(64);

        let clock = Arc::new(ManualClock::new());
        let b_runtime = ShardRuntime::new(
            ShardConfig {
                detector: DetectorConfig::new(
                    DetectorSpec::TwoWindow { n1: 1, n2: 100 },
                    Span(100 * MS),
                    0.1,
                )
                .into(),
                n_shards: 1,
                ..ShardConfig::default()
            },
            clock.clone() as Arc<dyn TimeSource>,
        );

        // A digests on schedule until it crashes after 1 s. Its streams
        // are healthy: trust horizons always ~400 ms ahead of send time.
        let a_view = |at: Nanos| {
            [(100u64, 2u32), (101, 0)]
                .iter()
                .map(|&(stream, incarnation)| twofd_core::ProcessStatus {
                    key: stream,
                    output: FdOutput::Trust,
                    last_seq: Some(1),
                    trust_until: Some(Nanos(at.0 + 400 * MS)),
                    incarnation,
                })
                .collect::<Vec<_>>()
        };
        let crash_at = Nanos(1_000 * MS);
        let mut t = Nanos(DIGEST_EVERY);
        while t <= crash_at {
            assert!(a.digest_due(t));
            let d = a.build_digest(&a_view(t), t);
            a_out.send(&d.encode()).expect("b's inbox is open");
            t = Nanos(t.0 + DIGEST_EVERY);
        }

        // B drains the transport; every datagram decodes to a digest
        // heartbeat (delivery is instantaneous here — the virtual-time
        // cluster simulator exercises delayed/lossy variants).
        let n = b_in.recv_batch().expect("digests queued");
        assert_eq!(n, 5);
        for i in 0..n {
            let d = LivenessDigest::decode(b_in.datagram(i)).expect("well-formed digest");
            assert!(b.on_digest(&d, d.sent_at));
        }
        assert_eq!(b.peer_output(1, crash_at), Some(FdOutput::Trust));
        assert!(b.sweep(crash_at).is_empty(), "A still digesting at 1 s");

        // Silence: B's per-peer detector expires (next digest expected
        // at 1.2 s plus the 100 ms margin) and hands out A's view. The
        // failover must land inside the adopted horizons (1.4 s) — an
        // already-expired view has nothing left to seed.
        let detect_at = Nanos(1_350 * MS);
        clock.advance_to(detect_at);
        let adoptions = b.sweep(detect_at);
        assert_eq!(adoptions.len(), 1);
        let adoption = &adoptions[0];
        assert_eq!(adoption.peer, 1);
        assert_eq!(adoption.streams.len(), 2);

        // B seeds its runtime from the adopted view. The horizons ride
        // A's clock; here both clocks share an origin so the rebase is
        // the identity (the cluster simulator does a real NodeClock
        // rebase).
        for e in &adoption.streams {
            assert!(b_runtime.adopt(e.stream, e.incarnation, e.trust_until));
        }
        let statuses = b_runtime.statuses();
        assert_eq!(statuses.len(), 2);
        for s in &statuses {
            assert_eq!(s.output, FdOutput::Trust, "adopted streams start trusted");
        }
        let inc_of = |stream: u64| {
            statuses
                .iter()
                .find(|s| s.key == stream)
                .expect("adopted")
                .incarnation
        };
        assert_eq!(inc_of(100), 2, "incarnation survives the relay");
        assert_eq!(inc_of(101), 0);

        // Re-adoption of a stale incarnation is refused…
        assert!(!b_runtime.adopt(100, 1, Nanos(u64::MAX)));

        // …and with A's senders really gone, the adopted horizons
        // (last view sent at 1 s, trusted until 1.4 s) expire through
        // B's ordinary sweep path: detection continued across the crash.
        clock.advance_to(Nanos(3_000 * MS));
        b_runtime.sweep_now();
        for s in b_runtime.statuses() {
            assert_eq!(s.output, FdOutput::Suspect, "stream {}", s.key);
        }
    }
}
