//! Impact-FD group aggregation: set-valued trust over the federated view.
//!
//! The Impact FD (Rossetto et al.) generalizes the binary
//! trust/suspect output to a *group* verdict: every member process
//! carries an **impact factor** expressing how much its liveness
//! matters, and the group is accepted while the summed factors of the
//! currently trusted members stay at or above a threshold. The
//! per-member timeout detectors are ordinary [`FailureDetector`](twofd_core::FailureDetector)s
//! ([`ImpactFd`](twofd_core::ImpactFd), built through
//! `DetectorSpec::Impact` and dispatched inline like every other
//! algorithm in the suite); this module adds only the pure aggregation
//! step, so it works equally over a local runtime's statuses or over
//! the federated view a monitor assembles from adopted digests.

use std::collections::BTreeMap;
use twofd_core::{FdOutput, ProcessStatus};

/// A group's membership, impact factors and acceptance threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImpactGroup {
    factors: BTreeMap<u64, usize>,
    threshold: usize,
}

/// One set-valued assessment of an [`ImpactGroup`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImpactAssessment {
    /// The members currently trusted, in id order.
    pub trusted: Vec<u64>,
    /// Sum of the trusted members' impact factors.
    pub trust_level: usize,
    /// Whether the trust level meets the group's threshold.
    pub accepted: bool,
}

impl ImpactGroup {
    /// Creates a group with the given acceptance threshold.
    pub fn new(threshold: usize) -> Self {
        ImpactGroup {
            factors: BTreeMap::new(),
            threshold,
        }
    }

    /// Adds (or re-weights) a member stream with its impact factor.
    pub fn member(mut self, stream: u64, factor: usize) -> Self {
        self.factors.insert(stream, factor);
        self
    }

    /// The group's acceptance threshold.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// The member streams, in id order.
    pub fn members(&self) -> Vec<u64> {
        self.factors.keys().copied().collect()
    }

    /// Sum of every member's impact factor (the trust level of a fully
    /// healthy group).
    pub fn max_trust_level(&self) -> usize {
        self.factors.values().sum()
    }

    /// Assesses the group over a status snapshot — the local runtime's
    /// or the federated view after adoption. A member absent from
    /// `statuses` counts as untrusted (no detector has ever seen it),
    /// and statuses for non-member streams are ignored.
    pub fn assess(&self, statuses: &[ProcessStatus<u64>]) -> ImpactAssessment {
        let mut trusted = Vec::new();
        let mut trust_level = 0usize;
        for (&stream, &factor) in &self.factors {
            let alive = statuses
                .iter()
                .any(|s| s.key == stream && s.output == FdOutput::Trust);
            if alive {
                trusted.push(stream);
                trust_level += factor;
            }
        }
        ImpactAssessment {
            trusted,
            trust_level,
            accepted: trust_level >= self.threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twofd_sim::time::Nanos;

    fn status(key: u64, trusted: bool) -> ProcessStatus<u64> {
        ProcessStatus {
            key,
            output: if trusted {
                FdOutput::Trust
            } else {
                FdOutput::Suspect
            },
            last_seq: Some(1),
            trust_until: trusted.then_some(Nanos(1)),
            incarnation: 0,
        }
    }

    fn replicated_service() -> ImpactGroup {
        // Two heavyweight replicas and two light witnesses; the service
        // survives as long as one replica plus anything else is up.
        ImpactGroup::new(5)
            .member(1, 4)
            .member(2, 4)
            .member(3, 1)
            .member(4, 1)
    }

    #[test]
    fn healthy_group_is_accepted_at_full_trust_level() {
        let g = replicated_service();
        let a = g.assess(&[
            status(1, true),
            status(2, true),
            status(3, true),
            status(4, true),
        ]);
        assert_eq!(a.trusted, vec![1, 2, 3, 4]);
        assert_eq!(a.trust_level, g.max_trust_level());
        assert!(a.accepted);
    }

    #[test]
    fn acceptance_follows_the_summed_factors_not_the_count() {
        let g = replicated_service();
        // One replica and one witness: 4 + 1 = 5 meets the threshold.
        let a = g.assess(&[status(1, true), status(3, true), status(2, false)]);
        assert_eq!(a.trusted, vec![1, 3]);
        assert!(a.accepted);
        // Both witnesses alone: 1 + 1 = 2 does not, despite two members.
        let b = g.assess(&[status(3, true), status(4, true)]);
        assert_eq!(b.trust_level, 2);
        assert!(!b.accepted);
    }

    #[test]
    fn absent_members_count_as_untrusted() {
        let g = replicated_service();
        let a = g.assess(&[status(1, true)]);
        assert_eq!(a.trusted, vec![1]);
        assert_eq!(a.trust_level, 4);
        assert!(!a.accepted);
    }

    #[test]
    fn non_member_statuses_are_ignored() {
        let g = ImpactGroup::new(1).member(1, 1);
        let a = g.assess(&[status(99, true)]);
        assert!(a.trusted.is_empty());
        assert!(!a.accepted);
    }
}
