//! Liveness-digest wire format.
//!
//! A federated monitor periodically summarizes the liveness state of
//! every stream it owns — key, incarnation, trust horizon, current
//! verdict — into one datagram and relays it to its peers over the same
//! [`Transport`](twofd_net::Transport) seam the heartbeats use. The
//! digest plays two roles at once (Dobre et al.'s large-scale
//! architecture): its *arrival* is a heartbeat of the sending monitor
//! (fed to a per-peer failure detector, so monitors monitor monitors),
//! and its *payload* is the state a surviving peer adopts when the
//! sender crashes.
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "2WDG"
//! 4       2     version (LE, = 1)
//! 6       2     reserved (zero)
//! 8       8     origin monitor id (LE)
//! 16      8     digest sequence number (LE, starts at 1)
//! 24      8     send timestamp, nanos on the origin's clock (LE)
//! 32      4     entry count (LE)
//! 36      21·n  entries
//! ```
//!
//! Each entry is 21 bytes: stream id (8), incarnation (4), trust
//! horizon in nanos on the origin's clock (8), and a flags byte whose
//! low bit is the suspect verdict. The horizon rides the *origin's*
//! clock — an adopter on another node must rebase it before use (the
//! cluster simulator does this through its `NodeClock` maps).
//!
//! Decoding is total: truncated headers, truncated entry regions, bad
//! magic and unknown versions are all rejected with a typed error,
//! never a panic — digests cross the same hostile network heartbeats
//! do.

use bytes::Bytes;
use twofd_sim::time::Nanos;

/// Digest magic bytes.
pub const DIGEST_MAGIC: [u8; 4] = *b"2WDG";
/// Current digest wire version.
pub const DIGEST_VERSION: u16 = 1;
/// Fixed header size in bytes.
pub const DIGEST_HEADER: usize = 36;
/// Encoded size of one entry.
pub const DIGEST_ENTRY_SIZE: usize = 21;

/// One stream's liveness state inside a digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DigestEntry {
    /// The monitored stream.
    pub stream: u64,
    /// The stream's current incarnation at the origin.
    pub incarnation: u32,
    /// The origin's trust horizon for the stream, on the origin's
    /// clock; `Nanos::ZERO` when the origin never trusted it.
    pub trust_until: Nanos,
    /// The origin's current verdict (true = suspected).
    pub suspect: bool,
}

/// One monitor's relayed liveness summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LivenessDigest {
    /// The sending monitor's id.
    pub origin: u64,
    /// Digest sequence number, starting at 1 — the heartbeat counter
    /// of the monitor-monitoring-monitor detectors.
    pub seq: u64,
    /// Send time on the origin's clock.
    pub sent_at: Nanos,
    /// Per-stream liveness state, in the origin's slot order.
    pub entries: Vec<DigestEntry>,
}

/// Digest decoding failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DigestError {
    /// Datagram shorter than the header, or than the entry region its
    /// count claims.
    TooShort {
        /// Received length.
        len: usize,
    },
    /// Magic bytes do not match.
    BadMagic,
    /// Unsupported version.
    BadVersion(u16),
}

impl std::fmt::Display for DigestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DigestError::TooShort { len } => write!(f, "digest too short ({len} bytes)"),
            DigestError::BadMagic => write!(f, "bad digest magic"),
            DigestError::BadVersion(v) => write!(f, "unsupported digest version {v}"),
        }
    }
}

impl std::error::Error for DigestError {}

impl LivenessDigest {
    /// Encoded size of this digest on the wire.
    pub fn wire_size(&self) -> usize {
        DIGEST_HEADER + self.entries.len() * DIGEST_ENTRY_SIZE
    }

    /// Encodes the digest into a fresh owned buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = Vec::with_capacity(self.wire_size());
        buf.extend_from_slice(&DIGEST_MAGIC);
        buf.extend_from_slice(&DIGEST_VERSION.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&self.origin.to_le_bytes());
        buf.extend_from_slice(&self.seq.to_le_bytes());
        buf.extend_from_slice(&self.sent_at.0.to_le_bytes());
        buf.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for e in &self.entries {
            buf.extend_from_slice(&e.stream.to_le_bytes());
            buf.extend_from_slice(&e.incarnation.to_le_bytes());
            buf.extend_from_slice(&e.trust_until.0.to_le_bytes());
            buf.push(u8::from(e.suspect));
        }
        Bytes::from(buf)
    }

    /// Decodes a digest from a received datagram. Total: any
    /// malformation is a typed error, never a panic. Trailing bytes
    /// beyond the declared entry region are tolerated (future versions
    /// may append fields).
    pub fn decode(data: &[u8]) -> Result<LivenessDigest, DigestError> {
        if data.len() < DIGEST_HEADER {
            return Err(DigestError::TooShort { len: data.len() });
        }
        if data[0..4] != DIGEST_MAGIC {
            return Err(DigestError::BadMagic);
        }
        let version = u16::from_le_bytes(data[4..6].try_into().expect("2-byte field"));
        if version != DIGEST_VERSION {
            return Err(DigestError::BadVersion(version));
        }
        let u64_at =
            |at: usize| u64::from_le_bytes(data[at..at + 8].try_into().expect("8-byte field"));
        let count = u32::from_le_bytes(data[32..36].try_into().expect("4-byte field")) as usize;
        // The count is attacker-controlled; bound the allocation by what
        // the datagram actually carries before reserving anything.
        let need = DIGEST_HEADER + count * DIGEST_ENTRY_SIZE;
        if data.len() < need {
            return Err(DigestError::TooShort { len: data.len() });
        }
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let at = DIGEST_HEADER + i * DIGEST_ENTRY_SIZE;
            entries.push(DigestEntry {
                stream: u64_at(at),
                incarnation: u32::from_le_bytes(
                    data[at + 8..at + 12].try_into().expect("4-byte field"),
                ),
                trust_until: Nanos(u64_at(at + 12)),
                suspect: data[at + 20] & 1 != 0,
            });
        }
        Ok(LivenessDigest {
            origin: u64_at(8),
            seq: u64_at(16),
            sent_at: Nanos(u64_at(24)),
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> LivenessDigest {
        LivenessDigest {
            origin: 7,
            seq: 42,
            sent_at: Nanos(1_234_567_890),
            entries: vec![
                DigestEntry {
                    stream: 1,
                    incarnation: 0,
                    trust_until: Nanos(2_000_000_000),
                    suspect: false,
                },
                DigestEntry {
                    stream: u64::MAX,
                    incarnation: 3,
                    trust_until: Nanos::ZERO,
                    suspect: true,
                },
            ],
        }
    }

    #[test]
    fn round_trip() {
        let d = sample();
        let encoded = d.encode();
        assert_eq!(encoded.len(), d.wire_size());
        assert_eq!(LivenessDigest::decode(&encoded).unwrap(), d);
    }

    #[test]
    fn empty_digest_round_trips() {
        let d = LivenessDigest {
            origin: 1,
            seq: 1,
            sent_at: Nanos::ZERO,
            entries: Vec::new(),
        };
        assert_eq!(d.encode().len(), DIGEST_HEADER);
        assert_eq!(LivenessDigest::decode(&d.encode()).unwrap(), d);
    }

    #[test]
    fn truncation_anywhere_is_rejected_without_panic() {
        let encoded = sample().encode();
        for len in 0..encoded.len() {
            assert_eq!(
                LivenessDigest::decode(&encoded[..len]),
                Err(DigestError::TooShort { len }),
                "truncated at {len}"
            );
        }
    }

    #[test]
    fn lying_entry_count_is_rejected() {
        let mut data = sample().encode().to_vec();
        // Claim far more entries than the datagram carries.
        data[32..36].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            LivenessDigest::decode(&data),
            Err(DigestError::TooShort { .. })
        ));
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bad_magic = sample().encode().to_vec();
        bad_magic[0] = b'X';
        assert_eq!(
            LivenessDigest::decode(&bad_magic),
            Err(DigestError::BadMagic)
        );
        let mut bad_version = sample().encode().to_vec();
        bad_version[4] = 0xEE;
        assert!(matches!(
            LivenessDigest::decode(&bad_version),
            Err(DigestError::BadVersion(_))
        ));
    }

    #[test]
    fn trailing_bytes_are_tolerated() {
        let d = sample();
        let mut data = d.encode().to_vec();
        data.extend_from_slice(&[9, 9, 9]);
        assert_eq!(LivenessDigest::decode(&data).unwrap(), d);
    }

    proptest! {
        #[test]
        fn garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = LivenessDigest::decode(&data);
        }

        #[test]
        fn round_trip_any_entry(
            stream in any::<u64>(),
            inc in any::<u32>(),
            horizon in any::<u64>(),
            suspect in any::<bool>(),
        ) {
            let d = LivenessDigest {
                origin: 3,
                seq: 9,
                sent_at: Nanos(17),
                entries: vec![DigestEntry {
                    stream,
                    incarnation: inc,
                    trust_until: Nanos(horizon),
                    suspect,
                }],
            };
            prop_assert_eq!(LivenessDigest::decode(&d.encode()).unwrap(), d);
        }
    }
}
