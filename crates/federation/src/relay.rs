//! The digest-relay state machine: monitors monitoring monitors.
//!
//! [`Federation`] is the deterministic, transport-free core a federated
//! monitor drives. It owns:
//!
//! * **Digest emission** — [`Federation::build_digest`] summarizes the
//!   local runtime's [`ProcessStatus`] snapshot into a
//!   [`LivenessDigest`]; the caller encodes it and pushes it through
//!   whatever [`SenderTransport`](twofd_net::SenderTransport) reaches
//!   its peers, on the cadence [`Federation::digest_due`] reports.
//! * **Peer detection** — every received digest is a heartbeat of its
//!   origin: [`Federation::on_digest`] feeds a per-peer
//!   [`AnyDetector`], built from the same [`DetectorConfig`] recipe as
//!   stream detectors. The recommended recipe comes from the service
//!   registry's strictest-QoS combination over every application that
//!   depends on the peer ([`Federation::register_peer_from_registry`]) —
//!   the monitors-monitoring-monitors layer obeys the same contracted
//!   QoS calculus as the streams themselves.
//! * **Adoption** — when [`Federation::sweep`] finds a peer's detector
//!   suspecting it, the peer's last relayed view is handed back once as
//!   an [`Adoption`]; the caller seeds its own runtime from it
//!   (`ShardRuntime::adopt`) so detection of the dead monitor's streams
//!   continues without waiting for re-registration.
//!
//! All methods take explicit `now` instants and touch no clock, no
//! socket and no thread, so the whole protocol runs bit-identically
//! inside the virtual-time cluster simulator.

use crate::digest::{DigestEntry, LivenessDigest};
use std::collections::BTreeMap;
use twofd_core::{
    AnyDetector, ConfigError, DetectorConfig, DetectorSpec, FailureDetector, FdOutput,
    NetworkBehavior, ProcessStatus,
};
use twofd_obs::{Counter, Gauge, Registry};
use twofd_service::AppRegistry;
use twofd_sim::time::{Nanos, Span};

/// Identity and cadence of one federated monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FederationConfig {
    /// This monitor's id (the `origin` of every digest it emits).
    pub local: u64,
    /// How often digests are emitted (and therefore the heartbeat
    /// interval the per-peer detectors should be configured with).
    pub digest_interval: Span,
}

struct PeerState {
    fd: AnyDetector,
    /// The peer's last relayed view, adopted verbatim if it dies.
    view: Vec<DigestEntry>,
    /// Send instant (origin clock) of the stored view.
    view_sent_at: Nanos,
    /// Whether the peer is currently suspected by its detector.
    suspected: bool,
    /// Whether the stored view has already been handed out; reset when
    /// the peer digests again, so a later crash re-adopts.
    adopted: bool,
}

/// A dead peer's view, handed out exactly once per suspicion episode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Adoption {
    /// The suspected peer.
    pub peer: u64,
    /// Send instant (on the *peer's* clock) of the adopted view; the
    /// adopter rebases the entries' horizons relative to this.
    pub view_sent_at: Nanos,
    /// The streams the peer last reported trusted (suspect entries are
    /// filtered out — there is nothing live to keep detecting).
    pub streams: Vec<DigestEntry>,
}

/// The deterministic federation core of one monitor.
pub struct Federation {
    config: FederationConfig,
    seq: u64,
    last_sent: Option<Nanos>,
    peers: BTreeMap<u64, PeerState>,
    digests_sent: Counter,
    digests_received: Counter,
    peers_suspected: Gauge,
    streams_adopted: Counter,
}

impl Federation {
    /// Creates a federation core, registering its metrics (prefix
    /// `twofd_federation_*`) in `registry`.
    pub fn new(config: FederationConfig, registry: &Registry) -> Self {
        assert!(
            !config.digest_interval.is_zero(),
            "digest interval must be positive"
        );
        Federation {
            config,
            seq: 0,
            last_sent: None,
            peers: BTreeMap::new(),
            digests_sent: registry.counter(
                "twofd_federation_digests_sent_total",
                "Liveness digests emitted to peers",
            ),
            digests_received: registry.counter(
                "twofd_federation_digests_received_total",
                "Liveness digests received from peers",
            ),
            peers_suspected: registry.gauge(
                "twofd_federation_peers_suspected",
                "Peer monitors currently suspected crashed",
            ),
            streams_adopted: registry.counter(
                "twofd_federation_streams_adopted_total",
                "Streams adopted from dead peers' relayed views",
            ),
        }
    }

    /// This monitor's configuration.
    pub fn config(&self) -> FederationConfig {
        self.config
    }

    /// Registers a peer monitor, watched by a detector built from
    /// `detector` — use the digest interval as the recipe's Δi.
    pub fn register_peer(&mut self, peer: u64, detector: &DetectorConfig) {
        self.peers.insert(
            peer,
            PeerState {
                fd: detector.build(),
                view: Vec::new(),
                view_sent_at: Nanos::ZERO,
                suspected: false,
                adopted: false,
            },
        );
    }

    /// Registers a peer watched at the strictest QoS any application
    /// bound to stream id `peer` in `apps` demands: Chen's
    /// configuration procedure derives `(Δi, Δto)` from that combined
    /// requirement under `net`, and `spec` picks the algorithm. `None`
    /// when nothing is bound to the peer's id, `Some(Err(_))` when the
    /// combined requirement is infeasible under `net`.
    pub fn register_peer_from_registry(
        &mut self,
        peer: u64,
        apps: &AppRegistry,
        net: &NetworkBehavior,
        spec: &DetectorSpec,
    ) -> Option<Result<(), ConfigError>> {
        match apps.detector_config_for_stream(peer, net, spec)? {
            Ok(config) => {
                self.register_peer(peer, &config);
                Some(Ok(()))
            }
            Err(e) => Some(Err(e)),
        }
    }

    /// The registered peers, in id order.
    pub fn peers(&self) -> Vec<u64> {
        self.peers.keys().copied().collect()
    }

    /// Whether the digest cadence calls for an emission at `now`.
    pub fn digest_due(&self, now: Nanos) -> bool {
        match self.last_sent {
            None => true,
            Some(at) => now.saturating_since(at).0 >= self.config.digest_interval.0,
        }
    }

    /// Builds the next outgoing digest from the local runtime's status
    /// snapshot, bumping the digest sequence number. The caller encodes
    /// and transmits it to every peer.
    pub fn build_digest(&mut self, statuses: &[ProcessStatus<u64>], now: Nanos) -> LivenessDigest {
        self.seq += 1;
        self.last_sent = Some(now);
        self.digests_sent.inc();
        LivenessDigest {
            origin: self.config.local,
            seq: self.seq,
            sent_at: now,
            entries: statuses
                .iter()
                .map(|s| DigestEntry {
                    stream: s.key,
                    incarnation: s.incarnation,
                    trust_until: s.trust_until.unwrap_or(Nanos::ZERO),
                    suspect: s.output == FdOutput::Suspect,
                })
                .collect(),
        }
    }

    /// Feeds one received digest: a heartbeat of its origin's detector
    /// plus a refresh of the stored view. Returns false (and ignores
    /// the digest) when the origin is not a registered peer. A digest
    /// from a previously suspected peer clears the suspicion episode,
    /// so a later crash adopts the *new* view.
    pub fn on_digest(&mut self, digest: &LivenessDigest, arrival: Nanos) -> bool {
        let Some(peer) = self.peers.get_mut(&digest.origin) else {
            return false;
        };
        self.digests_received.inc();
        // Stale digests (reordered/duplicated) are rejected by the
        // detector's freshness rule and must not regress the view.
        if peer.fd.on_heartbeat(digest.seq, arrival).is_some() {
            peer.view = digest.entries.clone();
            peer.view_sent_at = digest.sent_at;
            if peer.suspected {
                peer.suspected = false;
                peer.adopted = false;
                self.refresh_suspected_gauge();
            }
        }
        true
    }

    /// The current verdict on one peer (`None` if unregistered).
    pub fn peer_output(&self, peer: u64, now: Nanos) -> Option<FdOutput> {
        self.peers.get(&peer).map(|p| p.fd.output_at(now))
    }

    /// Checks every peer's detector at `now` and hands out the views of
    /// newly dead peers, exactly once per suspicion episode. Entries
    /// the peer itself had already suspected are filtered out.
    pub fn sweep(&mut self, now: Nanos) -> Vec<Adoption> {
        let mut adoptions = Vec::new();
        let mut gauge_dirty = false;
        for (&id, peer) in self.peers.iter_mut() {
            let suspect = peer.fd.output_at(now) == FdOutput::Suspect;
            if suspect != peer.suspected {
                peer.suspected = suspect;
                gauge_dirty = true;
            }
            if suspect && !peer.adopted && !peer.view.is_empty() {
                peer.adopted = true;
                let streams: Vec<DigestEntry> =
                    peer.view.iter().filter(|e| !e.suspect).copied().collect();
                self.streams_adopted.add(streams.len() as u64);
                adoptions.push(Adoption {
                    peer: id,
                    view_sent_at: peer.view_sent_at,
                    streams,
                });
            }
        }
        if gauge_dirty {
            self.refresh_suspected_gauge();
        }
        adoptions
    }

    fn refresh_suspected_gauge(&self) {
        let n = self.peers.values().filter(|p| p.suspected).count();
        self.peers_suspected.set(n as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twofd_core::QosSpec;

    const MS: u64 = 1_000_000;

    fn peer_recipe(interval_ms: u64, margin_s: f64) -> DetectorConfig {
        // Window 1 tracks the latest digest arrival only, so a peer
        // that revives after a long silence is re-trusted by its first
        // digest — the property the re-arm test exercises.
        DetectorConfig::new(
            DetectorSpec::Chen { window: 1 },
            Span(interval_ms * MS),
            margin_s,
        )
    }

    fn federation(local: u64) -> Federation {
        Federation::new(
            FederationConfig {
                local,
                digest_interval: Span(200 * MS),
            },
            &Registry::new(),
        )
    }

    fn status(key: u64, trusted_until: Option<u64>, incarnation: u32) -> ProcessStatus<u64> {
        ProcessStatus {
            key,
            output: if trusted_until.is_some() {
                FdOutput::Trust
            } else {
                FdOutput::Suspect
            },
            last_seq: Some(1),
            trust_until: trusted_until.map(Nanos),
            incarnation,
        }
    }

    #[test]
    fn digest_cadence_and_sequence() {
        let mut f = federation(1);
        assert!(f.digest_due(Nanos::ZERO));
        let d1 = f.build_digest(&[], Nanos(1_000 * MS));
        assert_eq!((d1.origin, d1.seq), (1, 1));
        assert!(!f.digest_due(Nanos(1_100 * MS)));
        assert!(f.digest_due(Nanos(1_200 * MS)));
        let d2 = f.build_digest(&[], Nanos(1_200 * MS));
        assert_eq!(d2.seq, 2);
    }

    #[test]
    fn digest_carries_the_status_snapshot() {
        let mut f = federation(1);
        let d = f.build_digest(
            &[status(10, Some(5_000 * MS), 2), status(11, None, 0)],
            Nanos(1_000 * MS),
        );
        assert_eq!(d.entries.len(), 2);
        assert_eq!(d.entries[0].stream, 10);
        assert_eq!(d.entries[0].incarnation, 2);
        assert!(!d.entries[0].suspect);
        assert!(d.entries[1].suspect);
        assert_eq!(d.entries[1].trust_until, Nanos::ZERO);
    }

    #[test]
    fn dead_peer_is_adopted_exactly_once() {
        let mut f = federation(1);
        f.register_peer(2, &peer_recipe(200, 0.1));
        let mut remote = federation(2);
        // Peer 2 digests on schedule, then stops.
        for beat in 1..=5u64 {
            let at = Nanos(beat * 200 * MS);
            let d = remote.build_digest(&[status(20, Some(at.0 + 400 * MS), 0)], at);
            assert!(f.on_digest(&d, at));
        }
        assert_eq!(f.peer_output(2, Nanos(1_000 * MS)), Some(FdOutput::Trust));
        assert!(f.sweep(Nanos(1_000 * MS)).is_empty());
        // Silence long past the next expected digest.
        let adoptions = f.sweep(Nanos(3_000 * MS));
        assert_eq!(adoptions.len(), 1);
        assert_eq!(adoptions[0].peer, 2);
        assert_eq!(adoptions[0].view_sent_at, Nanos(1_000 * MS));
        assert_eq!(adoptions[0].streams.len(), 1);
        assert_eq!(adoptions[0].streams[0].stream, 20);
        // Once: a second sweep of the same episode hands out nothing.
        assert!(f.sweep(Nanos(3_100 * MS)).is_empty());
    }

    #[test]
    fn recovered_peer_re_arms_adoption_with_the_fresh_view() {
        let mut f = federation(1);
        f.register_peer(2, &peer_recipe(200, 0.1));
        let mut remote = federation(2);
        for beat in 1..=3u64 {
            let at = Nanos(beat * 200 * MS);
            let d = remote.build_digest(&[status(20, Some(at.0 + 400 * MS), 0)], at);
            f.on_digest(&d, at);
        }
        assert_eq!(f.sweep(Nanos(2_000 * MS)).len(), 1, "first episode");
        // The peer comes back with a different view…
        let back = Nanos(2_200 * MS);
        let d = remote.build_digest(&[status(21, Some(back.0 + 400 * MS), 1)], back);
        f.on_digest(&d, back);
        assert_eq!(f.peer_output(2, Nanos(2_300 * MS)), Some(FdOutput::Trust));
        // …crashes again, and the *new* view is handed out.
        let again = f.sweep(Nanos(4_000 * MS));
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].streams[0].stream, 21);
        assert_eq!(again[0].streams[0].incarnation, 1);
    }

    #[test]
    fn suspect_entries_are_not_adopted() {
        let mut f = federation(1);
        f.register_peer(2, &peer_recipe(200, 0.1));
        let mut remote = federation(2);
        let at = Nanos(200 * MS);
        let d = remote.build_digest(
            &[status(20, Some(at.0 + 400 * MS), 0), status(21, None, 0)],
            at,
        );
        f.on_digest(&d, at);
        let adoptions = f.sweep(Nanos(2_000 * MS));
        assert_eq!(adoptions.len(), 1);
        let streams: Vec<u64> = adoptions[0].streams.iter().map(|e| e.stream).collect();
        assert_eq!(streams, vec![20], "the dead-at-origin stream stays out");
    }

    #[test]
    fn unknown_origins_and_stale_digests_are_ignored() {
        let mut f = federation(1);
        f.register_peer(2, &peer_recipe(200, 0.1));
        let mut remote = federation(99);
        let d = remote.build_digest(&[], Nanos(200 * MS));
        assert!(!f.on_digest(&d, Nanos(200 * MS)), "unregistered origin");

        let mut peer2 = federation(2);
        let d1 = peer2.build_digest(&[status(20, Some(900 * MS), 0)], Nanos(200 * MS));
        let d2 = peer2.build_digest(&[status(20, Some(1_100 * MS), 0)], Nanos(400 * MS));
        assert!(f.on_digest(&d2, Nanos(400 * MS)));
        // The reordered earlier digest must not regress the view.
        assert!(f.on_digest(&d1, Nanos(410 * MS)));
        let adoptions = f.sweep(Nanos(5_000 * MS));
        assert_eq!(adoptions[0].streams[0].trust_until, Nanos(1_100 * MS));
    }

    #[test]
    fn registry_strictest_qos_configures_the_peer_detector() {
        let mut apps = AppRegistry::new();
        // Two applications depend on monitor 2; the combined requirement
        // is the componentwise strictest.
        apps.register_on_stream("lax", QosSpec::new(4.0, 600.0, 2.0), 2);
        apps.register_on_stream("strict", QosSpec::new(0.8, 3600.0, 0.5), 2);
        let net = NetworkBehavior::new(0.01, 0.0004);
        let mut f = federation(1);
        assert!(f
            .register_peer_from_registry(2, &apps, &net, &DetectorSpec::default())
            .expect("apps bound to peer 2")
            .is_ok());
        assert_eq!(f.peers(), vec![2]);
        // Nothing bound to id 3.
        assert!(f
            .register_peer_from_registry(3, &apps, &net, &DetectorSpec::default())
            .is_none());
    }
}
