//! Regenerates Figures 4 & 5: the 2W-FD window-size sweep on the WAN
//! trace — mistake rate vs detection time (Fig. 4, log-scale y in the
//! paper) and query accuracy vs detection time (Fig. 5).
//!
//! Run: `cargo bench -p twofd-bench --bench fig4_5`

use twofd_bench::{
    fig4_5_window_sweep, paper_window_pairs, render_sweep_figures, samples_from_env,
};
use twofd_trace::WanTraceConfig;

fn main() {
    let samples = samples_from_env(100_000);
    eprintln!("[fig4_5] generating WAN trace with {samples} heartbeats…");
    let trace = WanTraceConfig::small(samples, 0x2BFD_0001).generate();
    let pairs = paper_window_pairs();
    eprintln!("[fig4_5] sweeping {} window pairs…", pairs.len());
    let curves = fig4_5_window_sweep(&trace, &pairs);
    let (fig4, fig5) = render_sweep_figures("Figures 4/5 (WAN, 2W-FD window sizes)", &curves);
    fig4.print();
    fig5.print();
}
