//! Regenerates Figure 8: total mistakes per WAN segment (Table I) with
//! every detector calibrated to the same detection time, T_D = 215 ms.
//! Bertier cannot be parametrized to a target T_D and is skipped, as in
//! the paper.
//!
//! Run: `cargo bench -p twofd-bench --bench fig8`
//! `TWOFD_BENCH_TD_MS` overrides the target detection time.

use twofd_bench::{fig8_segment_analysis, render_fig8, samples_from_env};
use twofd_trace::{table1_segments, WanTraceConfig};

fn main() {
    let samples = samples_from_env(100_000);
    let td_ms: f64 = std::env::var("TWOFD_BENCH_TD_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(215.0);
    eprintln!("[fig8] WAN trace with {samples} heartbeats, target T_D = {td_ms} ms…");
    let trace = WanTraceConfig::small(samples, 0x2BFD_0001).generate();
    let rows = fig8_segment_analysis(&trace, td_ms / 1e3);
    let names: Vec<String> = table1_segments(samples)
        .into_iter()
        .map(|s| s.name)
        .collect();
    render_fig8(&rows, &names).print();
}
