//! Regenerates Figures 10–12: the configuration procedure's output
//! (Δi, Δto) as each requirement of the QoS tuple varies — detection
//! time (Fig. 10), mistake recurrence (Fig. 11), mistake duration
//! (Fig. 12).
//!
//! Run: `cargo bench -p twofd-bench --bench fig10_12`

use twofd_bench::{fig10_12_config_sweeps, render_config_sweep};
use twofd_core::{NetworkBehavior, QosSpec};

fn main() {
    // Paper-scale WAN-like behaviour: 1% loss, 20 ms delay std-dev.
    let net = NetworkBehavior::new(0.01, 0.02 * 0.02);
    let base = QosSpec::new(1.0, 3600.0, 1.0);
    eprintln!("[fig10_12] base tuple (T_D=1s, T_MR=1h, T_M=1s), pL=1%, sd(D)=20ms");
    let (fig10, fig11, fig12) = fig10_12_config_sweeps(&net, &base);
    render_config_sweep(
        "Figure 10: Δi/Δto vs detection time T_D^U",
        "td_u_s",
        &fig10,
    )
    .print();
    render_config_sweep(
        "Figure 11: Δi/Δto vs mistake recurrence T_MR^U",
        "tmr_u_s",
        &fig11,
    )
    .print();
    render_config_sweep(
        "Figure 12: Δi/Δto vs mistake duration T_M^U",
        "tm_u_s",
        &fig12,
    )
    .print();
}
