//! Regenerates the §V-C analysis: per-application QoS under the shared
//! failure-detection service vs dedicated detectors, and the network
//! load of both deployments.
//!
//! Run: `cargo bench -p twofd-bench --bench service_load`

use twofd_bench::{render_service, service_experiment};
use twofd_core::{NetworkBehavior, QosSpec};
use twofd_service::AppRegistry;
use twofd_sim::time::Span;

fn main() {
    let mut registry = AppRegistry::new();
    registry.register("cluster-manager", QosSpec::new(0.5, 86_400.0, 0.5));
    registry.register("group-membership", QosSpec::new(1.0, 3_600.0, 1.0));
    registry.register("batch-scheduler", QosSpec::new(5.0, 600.0, 3.0));
    registry.register("monitoring-ui", QosSpec::new(10.0, 300.0, 5.0));
    let net = NetworkBehavior::new(0.01, 0.01 * 0.01);
    eprintln!("[service_load] 4 applications, pL=1%, sd(D)=10 ms, 10-minute replay…");
    let analysis = service_experiment(&registry, &net, Span::from_secs(3600), 7, 600.0)
        .expect("all app tuples achievable");
    render_service(&analysis).print();
    println!(
        "network load: shared {:.3} msg/s vs dedicated {:.3} msg/s → reduction ×{:.2}",
        analysis.load.shared_rate, analysis.load.dedicated_rate, analysis.load.reduction_factor
    );
}
