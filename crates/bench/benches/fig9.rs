//! Regenerates Figure 9: the mistake-containment illustration. At a
//! common detection time, every mistake 2W-FD(1,1000) makes must
//! temporally coincide with a mistake of Chen(1) AND a mistake of
//! Chen(1000) (Eq. 13).
//!
//! Run: `cargo bench -p twofd-bench --bench fig9`

use twofd_bench::{fig9_mistake_overlap, samples_from_env, Figure, Series};

fn main() {
    let samples = samples_from_env(100_000);
    let td_ms: f64 = std::env::var("TWOFD_BENCH_TD_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(215.0);
    eprintln!("[fig9] WAN trace with {samples} heartbeats, target T_D = {td_ms} ms…");
    let trace = twofd_trace::WanTraceConfig::small(samples, 0x2BFD_0001).generate();
    let overlap = fig9_mistake_overlap(&trace, 1, 1000, td_ms / 1e3);

    let mut fig = Figure::new(
        "Figure 9: mistake containment at fixed T_D",
        &["mistakes", "contained_in_both_chen"],
    );
    let mut s = Series::new("2w-fd(1,1000)");
    s.push(vec![overlap.two_w.len() as f64, overlap.contained as f64]);
    fig.add(s);
    let mut s = Series::new("chen(1)");
    s.push(vec![overlap.chen_small.len() as f64, f64::NAN]);
    fig.add(s);
    let mut s = Series::new("chen(1000)");
    s.push(vec![overlap.chen_large.len() as f64, f64::NAN]);
    fig.add(s);
    fig.print();

    let ok = overlap.contained == overlap.two_w.len() && overlap.point_set_contained;
    println!(
        "containment (Eq. 13): {} — every 2W suspicion instant is shared by both Chen \
         detectors (point-set check: {})",
        if ok { "HOLDS" } else { "VIOLATED" },
        overlap.point_set_contained
    );
}
