//! Criterion micro-benchmarks: the per-heartbeat processing cost of each
//! detector — the figure that matters for a service multiplexing many
//! monitored hosts — and the cost of the replay engine itself.
//!
//! Run: `cargo bench -p twofd-bench --bench micro`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use twofd_core::{replay, DetectorSpec};
use twofd_sim::time::Span;
use twofd_trace::WanTraceConfig;

fn heartbeat_cost(c: &mut Criterion) {
    let interval = Span::from_millis(100);
    let mut group = c.benchmark_group("on_heartbeat");
    group.throughput(Throughput::Elements(1));
    for spec in [
        DetectorSpec::Chen { window: 1 },
        DetectorSpec::Chen { window: 1000 },
        DetectorSpec::TwoWindow { n1: 1, n2: 1000 },
        DetectorSpec::Bertier { window: 1000 },
        DetectorSpec::Phi { window: 1000 },
        DetectorSpec::Ed { window: 1000 },
    ] {
        group.bench_function(BenchmarkId::from_parameter(spec.label()), |b| {
            let mut fd = spec.build(interval, 1.0);
            let mut seq = 0u64;
            b.iter(|| {
                seq += 1;
                fd.on_heartbeat(seq, twofd_sim::Nanos(seq * interval.0 + 10_000_000))
            });
        });
    }
    group.finish();
}

fn window_scaling(c: &mut Criterion) {
    let interval = Span::from_millis(100);
    let mut group = c.benchmark_group("2w_long_window_scaling");
    for n2 in [10usize, 100, 1_000, 10_000] {
        group.bench_function(BenchmarkId::from_parameter(n2), |b| {
            let mut fd = DetectorSpec::TwoWindow { n1: 1, n2 }.build(interval, 1.0);
            let mut seq = 0u64;
            b.iter(|| {
                seq += 1;
                fd.on_heartbeat(seq, twofd_sim::Nanos(seq * interval.0 + 10_000_000))
            });
        });
    }
    group.finish();
}

fn replay_throughput(c: &mut Criterion) {
    let trace = WanTraceConfig::small(20_000, 3).generate();
    let mut group = c.benchmark_group("replay_20k_heartbeats");
    group.throughput(Throughput::Elements(trace.sent() as u64));
    for spec in [
        DetectorSpec::TwoWindow { n1: 1, n2: 1000 },
        DetectorSpec::Chen { window: 1000 },
        DetectorSpec::Phi { window: 1000 },
    ] {
        group.bench_function(BenchmarkId::from_parameter(spec.label()), |b| {
            b.iter(|| {
                let mut fd = spec.build(trace.interval, 0.5);
                replay(fd.as_mut(), &trace).mistakes.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, heartbeat_cost, window_scaling, replay_throughput);
criterion_main!(benches);
