//! Regenerates Figures 6 & 7: the algorithm comparison on the WAN trace
//! — 2W-FD(1,1000) vs Chen(1), Chen(1000), φ(1000), ED(1000) and the
//! single Bertier(1000) point. The paper also ran the LAN scenario and
//! reports identical shapes; pass `TWOFD_BENCH_LAN=1` to reproduce it.
//!
//! Run: `cargo bench -p twofd-bench --bench fig6_7`

use twofd_bench::{fig6_7_comparison, render_sweep_figures, samples_from_env};
use twofd_trace::{LanTraceConfig, WanTraceConfig};

fn main() {
    let samples = samples_from_env(100_000);
    let lan = std::env::var("TWOFD_BENCH_LAN").is_ok();
    let (scenario, trace) = if lan {
        (
            "LAN",
            LanTraceConfig::small(samples, 0x2BFD_0002).generate(),
        )
    } else {
        (
            "WAN",
            WanTraceConfig::small(samples, 0x2BFD_0001).generate(),
        )
    };
    eprintln!("[fig6_7] {scenario} trace with {samples} heartbeats; comparing 6 detectors…");
    let curves = fig6_7_comparison(&trace);
    let (fig6, fig7) = render_sweep_figures(
        &format!("Figures 6/7 ({scenario}, algorithm comparison)"),
        &curves,
    );
    fig6.print();
    fig7.print();
}
