//! Heartbeat ingest throughput: sharded runtime vs the single-mutex
//! baseline it replaced, and inline enum dispatch vs the boxed
//! `Box<dyn FailureDetector>` storage *it* replaced.
//!
//! The old `FleetMonitor` applied every heartbeat to a global
//! `Mutex<ProcessSet>` *on the socket thread*, and suspicion was only
//! observable by querying that same lock. A failure-detection service
//! exists to be read (§V: many applications sharing one monitor), so the
//! configuration that matters is **observed** ingestion: heartbeats
//! arriving while a consumer continuously reads detection state.
//!
//! * baseline observed: a reader thread polls `statuses()` — the old
//!   design's only way to see transitions — holding the global lock for
//!   a full O(streams) scan per poll, which the intake path must then
//!   win back for every single heartbeat;
//! * sharded observed: the reader drains the pushed event channel and
//!   polls `stats()`, which takes one shard lock at a time; intake is a
//!   route + bounded-queue push that never touches a detector lock.
//!
//! The boxed-vs-inline section runs the *same* single-threaded
//! `ProcessSet` workload twice: once with detectors stored as
//! `Box<dyn FailureDetector + Send>` behind the `SharedFactory` compat
//! builder (per-stream heap allocation + vtable per call, the pre-spec
//! storage), once stored inline as `AnyDetector` via `DetectorConfig`
//! (match dispatch, contiguous entries). Single-threaded on purpose:
//! it isolates dispatch/allocation cost from scheduling noise.
//!
//! The quiescent (no reader) variants are printed too, for honesty: with
//! nobody reading, a single uncontended mutex is hard to beat and the
//! handoff to workers costs time-sliced CPU on this box.
//!
//! HONESTY NOTE: this container exposes a single CPU core, so shard
//! workers time-slice with the ingest loop and *parallel* end-to-end
//! speedup is not observable here; the observed-intake ratio reflects
//! the architectural change (detector work and full-table scans moved
//! off the socket thread), not core count. On a multi-core host the
//! end-to-end numbers scale with shards as well.
//!
//! Run: `cargo bench -p twofd-bench --bench shard_throughput`
//! (scale with `TWOFD_BENCH_SAMPLES`, the *total* heartbeat count;
//! set `TWOFD_BENCH_QUICK=1` for a seconds-long smoke run — the mode
//! CI uses to keep the bench binary exercised, not a measurement).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use twofd_bench::samples_from_env;
use twofd_core::{
    DetectorBuilder, DetectorConfig, DetectorSpec, FailureDetector, ProcessSet, SharedFactory,
    TwoWindowFd,
};
use twofd_net::{
    FleetMonitor, Heartbeat, IntakeMode, Job, ManualClock, ObsOptions, ShardConfig, ShardRuntime,
    TimeSource, WIRE_SIZE,
};
use twofd_obs::{QosPlan, QosTrackerConfig};
use twofd_sim::time::{Nanos, Span};

const INTERVAL: Span = Span(100_000_000); // 100 ms

/// Smoke-run mode: tiny totals, single repetition. CI sets this to keep
/// every section executing without turning the job into a benchmark.
fn quick() -> bool {
    std::env::var("TWOFD_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Run only the scaling-matrix section and exit — for iterating on the
/// multi-shard fix without paying for the dispatch/UDP sections. Set
/// `TWOFD_BENCH_SCALING_ONLY=1`.
fn scaling_only() -> bool {
    std::env::var("TWOFD_BENCH_SCALING_ONLY").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Stream cardinality; override with `TWOFD_BENCH_STREAMS`. The default
/// 10 000 matches the fleet-monitoring scenario; small values keep the
/// whole detector table cache-resident, which isolates dispatch cost
/// from working-set effects in the boxed-vs-inline section.
fn stream_count() -> u64 {
    std::env::var("TWOFD_BENCH_STREAMS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000)
}

/// The spec-driven (inline `AnyDetector`) construction path.
fn inline_config() -> DetectorConfig {
    DetectorConfig::new(DetectorSpec::TwoWindow { n1: 1, n2: 100 }, INTERVAL, 0.04)
}

/// The pre-spec storage: the same detector boxed behind the type-erased
/// compat builder, exactly as the runtime used to hold it.
fn boxed_builder() -> SharedFactory<u64> {
    Arc::new(|_stream: &u64| {
        Box::new(TwoWindowFd::new(1, 100, INTERVAL, Span::from_millis(40)))
            as Box<dyn FailureDetector + Send>
    })
}

/// Round-robin heartbeat schedule: every stream beats once per interval.
fn schedule(total: u64, streams: u64) -> Vec<(u64, u64, Nanos)> {
    let beats = total.div_ceil(streams);
    let mut jobs = Vec::with_capacity((beats * streams) as usize);
    for seq in 1..=beats {
        for stream in 0..streams {
            // Spread arrivals inside the interval so per-stream inter-
            // arrival times stay realistic.
            let at = Nanos(seq * INTERVAL.0 + stream * (INTERVAL.0 / streams));
            jobs.push((stream, seq, at));
        }
    }
    jobs
}

fn rate(jobs: usize, elapsed: Duration) -> f64 {
    jobs as f64 / elapsed.as_secs_f64()
}

/// Repetitions per configuration; the best run is reported. On a shared
/// single-core container scheduling noise only ever *slows* a run, so
/// the max is the least-interference capacity estimate.
fn reps() -> usize {
    if quick() {
        1
    } else {
        3
    }
}

fn best_of(mut measure: impl FnMut() -> (f64, f64)) -> (f64, f64) {
    let mut best = (0.0f64, 0.0f64);
    for _ in 0..reps() {
        let (a, b) = measure();
        best.0 = best.0.max(a);
        best.1 = best.1.max(b);
    }
    best
}

/// The pre-shard design: heartbeats applied inline under one global
/// lock. With `observed`, a reader thread polls `statuses()` on that
/// lock throughout — the only way the old design surfaced transitions.
/// Generic over the builder so the same workload measures boxed vs
/// inline detector storage.
fn baseline<B>(jobs: &[(u64, u64, Nanos)], builder: B, observed: bool) -> f64
where
    B: DetectorBuilder<u64> + Send + 'static,
    B::Detector: Send,
{
    let set = Arc::new(parking_lot::Mutex::new(ProcessSet::new(builder)));
    let stop = Arc::new(AtomicBool::new(false));
    let reader = observed.then(|| {
        let set = Arc::clone(&set);
        let stop = Arc::clone(&stop);
        let now = jobs.last().unwrap().2;
        std::thread::spawn(move || {
            let mut scans = 0u64;
            while !stop.load(Ordering::Relaxed) {
                scans += set.lock().statuses(now).len() as u64;
            }
            scans
        })
    });
    let t0 = Instant::now();
    for &(stream, seq, at) in jobs {
        set.lock().on_heartbeat(stream, seq, at);
    }
    let elapsed = t0.elapsed();
    stop.store(true, Ordering::Relaxed);
    if let Some(h) = reader {
        let _ = h.join();
    }
    rate(jobs.len(), elapsed)
}

/// Single-threaded sweep pass over the whole table, as the shard workers
/// run it between batches. Returns the sweep-loop rate (streams/s).
fn sweep_rate<B>(jobs: &[(u64, u64, Nanos)], builder: B, sweeps: usize) -> f64
where
    B: DetectorBuilder<u64>,
{
    let mut set = ProcessSet::new(builder);
    for &(stream, seq, at) in jobs {
        set.on_heartbeat(stream, seq, at);
    }
    let horizon = jobs.last().unwrap().2 + Span::from_secs(60);
    let mut events = Vec::new();
    let t0 = Instant::now();
    for _ in 0..sweeps {
        // counts() walks every entry's current decision — the same
        // cache-locality-bound scan the sweeper and stats path pay.
        std::hint::black_box(set.counts(horizon));
        set.sweep(horizon, &mut events);
        events.clear();
    }
    rate(sweeps * set.len(), t0.elapsed())
}

/// Clock mode for [`sharded`]: pinning the clock at the horizon before
/// ingest makes every decision expire instantly (maximal sweep work —
/// the throughput sections' convention), while advancing it alongside
/// ingest keeps streams on time, the operating condition that isolates
/// per-heartbeat instrumentation cost from mistake-path churn.
#[derive(Clone, Copy, PartialEq)]
enum ClockMode {
    Pinned,
    Live,
}

/// The sharded runtime. With `observed`, a reader drains the event
/// channel and polls `stats()` throughout. `batch` sets the handoff
/// granularity: 1 = one `ingest` call per heartbeat, >1 = `ingest_batch`
/// over chunks of that size (the batched-intake thread's shape). Returns
/// (intake, end-to-end) rates; intake is the socket-thread handoff rate,
/// end-to-end includes `flush()` (all detector work done).
fn sharded(
    jobs: &[(u64, u64, Nanos)],
    n_shards: usize,
    observed: bool,
    sweep_interval: Duration,
    obs: ObsOptions,
    clock_mode: ClockMode,
    batch: usize,
) -> (f64, f64) {
    let clock = Arc::new(ManualClock::new());
    let rt = Arc::new(ShardRuntime::new(
        ShardConfig {
            detector: inline_config().into(),
            n_shards,
            // Sized so backpressure never drops during the bench: we are
            // measuring throughput, not shedding.
            queue_capacity: jobs.len() / n_shards + 1024,
            sweep_interval,
            event_capacity: 1 << 15,
            obs,
        },
        clock.clone() as Arc<dyn TimeSource>,
    ));
    if clock_mode == ClockMode::Pinned {
        clock.advance_to(jobs.last().unwrap().2);
    }

    let stop = Arc::new(AtomicBool::new(false));
    let reader = observed.then(|| {
        let rt = Arc::clone(&rt);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut seen = 0u64;
            while !stop.load(Ordering::Relaxed) {
                seen += rt.events().try_iter().count() as u64;
                seen += rt.stats().streams() as u64;
            }
            seen
        })
    });

    // Widen to wire jobs (incarnation 0 — crash-stop traffic) outside
    // the timed section.
    let jobs4: Vec<Job> = jobs.iter().map(|&(s, q, at)| (s, q, at, 0)).collect();

    let t0 = Instant::now();
    if batch <= 1 {
        for &(stream, seq, at) in jobs {
            if clock_mode == ClockMode::Live {
                clock.advance_to(at);
            }
            rt.ingest(stream, seq, at);
        }
    } else {
        for chunk in jobs4.chunks(batch) {
            if clock_mode == ClockMode::Live {
                clock.advance_to(chunk.last().unwrap().2);
            }
            rt.ingest_batch(chunk);
        }
    }
    let ingest_elapsed = t0.elapsed();
    rt.flush();
    let total_elapsed = t0.elapsed();
    stop.store(true, Ordering::Relaxed);
    if let Some(h) = reader {
        let _ = h.join();
    }

    let stats = rt.stats();
    assert_eq!(stats.dropped(), 0, "bench queues must not shed");
    (
        rate(jobs.len(), ingest_elapsed),
        rate(jobs.len(), total_elapsed),
    )
}

fn main() {
    let total = samples_from_env(if quick() { 20_000 } else { 200_000 });
    let streams = stream_count();
    let jobs = schedule(total, streams);
    println!(
        "# shard_throughput: {} heartbeats across {} streams ({} cores visible)",
        jobs.len(),
        streams,
        std::thread::available_parallelism().map_or(1, usize::from),
    );

    // The scaling matrix the wheel/slab rework exists for: sustained
    // observed intake across stream cardinalities × shard counts.
    // Before the rework, 8 shards *collapsed* below 4 (every worker
    // wake paid a stale-horizon heap probe plus a HashMap-walking sweep
    // over its whole shard); the wheel parks workers on live horizons
    // only and sweeps by harvesting due buckets, so adding shards must
    // not cost sustained intake.
    println!("\n# scaling matrix (observed, batch-64 handoff, pinned clock)");
    let cells = scaling_matrix();
    match write_scaling_json(&cells) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => println!("could not write BENCH_scaling.json: {e}"),
    }
    if scaling_only() {
        return;
    }

    println!("\n# dispatch (single-threaded ProcessSet, same workload, no scheduling noise)");
    let (boxed_quiet, _) = best_of(|| (baseline(&jobs, boxed_builder(), false), 0.0));
    println!("boxed   heartbeat path: {boxed_quiet:>12.0} hb/s (Box<dyn> + vtable, pre-spec)");
    let (inline_quiet, _) = best_of(|| (baseline(&jobs, inline_config(), false), 0.0));
    println!(
        "inline  heartbeat path: {inline_quiet:>12.0} hb/s (AnyDetector, {:>6.2}x boxed)",
        inline_quiet / boxed_quiet
    );
    const SWEEPS: usize = 50;
    let (boxed_sweep, _) = best_of(|| (sweep_rate(&jobs, boxed_builder(), SWEEPS), 0.0));
    println!("boxed   sweep/scan:     {boxed_sweep:>12.0} streams/s");
    let (inline_sweep, _) = best_of(|| (sweep_rate(&jobs, inline_config(), SWEEPS), 0.0));
    println!(
        "inline  sweep/scan:     {inline_sweep:>12.0} streams/s ({:>6.2}x boxed)",
        inline_sweep / boxed_sweep
    );

    let quiet_base = inline_quiet;
    let (observed_base, _) = best_of(|| (baseline(&jobs, inline_config(), true), 0.0));
    println!("\nbaseline quiescent:  {quiet_base:>12.0} hb/s (no reader; intake == end-to-end)");
    println!(
        "baseline observed:   {observed_base:>12.0} hb/s (statuses() reader on the same lock)"
    );

    let live_sweep = Duration::from_millis(5);
    println!("\n# observed (reader active — the service's operating condition)");
    for n_shards in [1usize, 2, 4, 8] {
        let (intake, e2e) = best_of(|| {
            sharded(
                &jobs,
                n_shards,
                true,
                live_sweep,
                ObsOptions::default(),
                ClockMode::Pinned,
                1,
            )
        });
        println!(
            "{n_shards} shard(s): intake {intake:>12.0} hb/s ({:>6.2}x) | end-to-end {e2e:>12.0} hb/s ({:>6.2}x)",
            intake / observed_base,
            e2e / observed_base,
        );
    }

    println!("\n# quiescent (no reader — favours the single mutex on one core)");
    for n_shards in [1usize, 2, 4, 8] {
        let (intake, e2e) = best_of(|| {
            sharded(
                &jobs,
                n_shards,
                false,
                live_sweep,
                ObsOptions::default(),
                ClockMode::Pinned,
                1,
            )
        });
        println!(
            "{n_shards} shard(s): intake {intake:>12.0} hb/s ({:>6.2}x) | end-to-end {e2e:>12.0} hb/s ({:>6.2}x)",
            intake / quiet_base,
            e2e / quiet_base,
        );
    }

    // Observability overhead: the same quiescent workload with the full
    // per-stream instrumentation on (inter-arrival histogram + online
    // QoS trackers) vs the registry-counters-only default. Counters are
    // always on (they *are* the runtime's accounting), so "uninstr." is
    // the shipping default, not a stripped build. The clock advances
    // with ingest (streams stay on time): the pinned-clock convention
    // above expires every decision instantly, and that synthetic
    // 100%-mistake storm would charge the trackers' mistake path for
    // work no healthy fleet does.
    println!("\n# observability overhead (on-time streams, 4 shards, end-to-end)");
    let full_obs = || ObsOptions {
        jitter: true,
        qos: Some(QosPlan::Uniform(QosTrackerConfig::cumulative(INTERVAL))),
    };
    let (_, e2e_plain) = best_of(|| {
        sharded(
            &jobs,
            4,
            false,
            live_sweep,
            ObsOptions::default(),
            ClockMode::Live,
            1,
        )
    });
    let (_, e2e_instr) =
        best_of(|| sharded(&jobs, 4, false, live_sweep, full_obs(), ClockMode::Live, 1));
    println!("uninstrumented: {e2e_plain:>12.0} hb/s (registry counters only)");
    println!(
        "instrumented:   {e2e_instr:>12.0} hb/s (jitter hist + QoS trackers, {:>+6.2}% overhead)",
        (e2e_plain / e2e_instr - 1.0) * 100.0
    );

    // Handoff granularity: the same workload pushed one `ingest` call
    // per heartbeat vs `ingest_batch` over intake-sized chunks. The
    // batched path takes each shard's queue lock once per group and
    // wakes its worker at most once per batch, which is exactly what the
    // `recvmmsg` intake thread does with live traffic. (The seed
    // measured a "workers deferred" variant here by stalling the sweep
    // loop; deadline parking retired that trick — every enqueue now
    // wakes the owning worker, so this is the honest comparison.)
    println!("\n# handoff: per-heartbeat ingest vs ingest_batch (no reader, pinned clock)");
    for n_shards in [4usize, 8] {
        let (per_hb, _) = best_of(|| {
            sharded(
                &jobs,
                n_shards,
                false,
                live_sweep,
                ObsOptions::default(),
                ClockMode::Pinned,
                1,
            )
        });
        let (batched, _) = best_of(|| {
            sharded(
                &jobs,
                n_shards,
                false,
                live_sweep,
                ObsOptions::default(),
                ClockMode::Pinned,
                64,
            )
        });
        println!(
            "{n_shards} shard(s): per-hb {per_hb:>12.0} hb/s | batch-64 {batched:>12.0} hb/s ({:>5.2}x)",
            batched / per_hb,
        );
    }

    // The number the batching work exists for: observed intake on the
    // real loopback UDP path, seed per-datagram loop vs recvmmsg batch
    // intake, same blast.
    let udp_total = if quick() { 20_000 } else { 400_000 };
    println!("\n# live UDP intake ({udp_total} datagrams blasted at {streams} streams)");
    let mut udp_rates = [0.0f64; 2];
    for (slot, (label, mode)) in [
        ("per-datagram", IntakeMode::PerDatagram),
        ("batched     ", IntakeMode::Batched),
    ]
    .into_iter()
    .enumerate()
    {
        let mut best = (0.0f64, 0.0f64);
        for _ in 0..reps() {
            let (r, loss) = udp_blast(udp_total, streams, mode);
            if r > best.0 {
                best = (r, loss);
            }
        }
        udp_rates[slot] = best.0;
        println!(
            "{label}: observed intake {:>12.0} hb/s ({:>5.1}% of blast survived the socket buffer)",
            best.0,
            best.1 * 100.0,
        );
    }
    println!(
        "batched / per-datagram: {:.2}x",
        udp_rates[1] / udp_rates[0]
    );
    println!(
        "# intake = socket-thread handoff rate (what bounds UDP intake);\n\
         # end-to-end on a single-core host cannot show parallel speedup\n\
         # (see module docs)."
    );
}

/// One measured cell of the scaling matrix.
struct ScalingCell {
    streams: u64,
    shards: usize,
    heartbeats: usize,
    /// Sustained observed intake: ingest + all detector work retired
    /// (the acceptance metric — what bounds steady-state absorption).
    sustained: f64,
    /// Socket-thread handoff rate during the burst (scheduler-share
    /// bound on a single-core host; secondary).
    handoff: f64,
}

/// Runs the scaling matrix: observed intake at {10k, 100k, 1M} streams
/// × {1, 2, 4, 8} shards, batch-64 handoff (the `recvmmsg` intake
/// thread's shape), pinned clock (maximal sweep work — the throughput
/// sections' convention). Quick mode keeps every row but drops to one
/// beat per stream and one repetition.
///
/// The headline metric per cell is **sustained** observed intake: the
/// rate at which the monitor ingests *and retires* heartbeats with a
/// reader attached — the rate it can absorb indefinitely without
/// unbounded queue growth, and the number that collapsed before the
/// wheel/slab rework. The raw socket-thread handoff rate is kept as a
/// secondary column, but on a single-core box it measures the producer
/// thread's scheduler share (≈ 1/(workers+1), so it *must* fall as
/// shards rise) rather than anything about the detector architecture;
/// see the module docs.
fn scaling_matrix() -> Vec<ScalingCell> {
    let live_sweep = Duration::from_millis(5);
    let mut cells = Vec::new();
    for streams in [10_000u64, 100_000, 1_000_000] {
        // `schedule` needs at least one beat per stream; full mode gives
        // small fleets enough beats for a steady-state measurement.
        let total = if quick() {
            streams
        } else {
            (streams * 2).max(1_000_000)
        };
        let jobs = schedule(total, streams);
        for n_shards in [1usize, 2, 4, 8] {
            let (handoff, sustained) = best_of(|| {
                sharded(
                    &jobs,
                    n_shards,
                    true,
                    live_sweep,
                    ObsOptions::default(),
                    ClockMode::Pinned,
                    64,
                )
            });
            println!(
                "{streams:>9} streams x {n_shards} shard(s): \
                 sustained {sustained:>12.0} hb/s | handoff {handoff:>12.0} hb/s"
            );
            cells.push(ScalingCell {
                streams,
                shards: n_shards,
                heartbeats: jobs.len(),
                sustained,
                handoff,
            });
        }
        let sustained_at = |n: usize| {
            cells
                .iter()
                .find(|c| c.streams == streams && c.shards == n)
                .map_or(0.0, |c| c.sustained)
        };
        println!(
            "{streams:>9} streams: 8-shard / 4-shard sustained observed intake = {:.2}x",
            sustained_at(8) / sustained_at(4)
        );
    }
    cells
}

/// Emits the scaling matrix as `results/BENCH_scaling.json` at the
/// workspace root. Hand-rolled writer — the workspace vendors no JSON
/// serializer — with a flat schema so CI and EXPERIMENTS.md can consume
/// it without tooling.
fn write_scaling_json(cells: &[ScalingCell]) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("BENCH_scaling.json");
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"shard_throughput/scaling\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick() { "quick" } else { "full" }
    ));
    out.push_str("  \"batch\": 64,\n");
    out.push_str("  \"observed\": true,\n");
    out.push_str("  \"clock\": \"pinned\",\n");
    out.push_str(&format!("  \"reps\": {},\n", reps()));
    out.push_str(&format!(
        "  \"cores_visible\": {},\n",
        std::thread::available_parallelism().map_or(1, usize::from)
    ));
    out.push_str("  \"rows\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"streams\": {}, \"shards\": {}, \"heartbeats\": {}, \
             \"sustained_intake_hb_s\": {:.1}, \"handoff_hb_s\": {:.1}}}{}\n",
            c.streams,
            c.shards,
            c.heartbeats,
            c.sustained,
            c.handoff,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&path, out)?;
    Ok(path)
}

/// Blasts `total` heartbeats round-robin across `streams` at a live
/// [`FleetMonitor`] over loopback UDP, as fast as `send(2)` goes, then
/// waits for intake to go quiet. Returns (observed intake rate in hb/s,
/// fraction of the blast that survived the kernel socket buffer). The
/// rate divides *received* heartbeats by the time from first send to the
/// last observed intake growth, so a slow intake that loses half the
/// blast cannot score by draining a small survivor set quickly.
fn udp_blast(total: u64, streams: u64, mode: IntakeMode) -> (f64, f64) {
    let monitor = FleetMonitor::spawn_with_intake(
        ShardConfig {
            detector: inline_config().into(),
            queue_capacity: 1 << 15,
            ..ShardConfig::default()
        },
        mode,
    )
    .expect("bind fleet monitor");
    let sock = std::net::UdpSocket::bind(("127.0.0.1", 0)).expect("bind blaster");
    sock.connect(monitor.local_addr()).expect("connect");

    // Blast via sendmmsg so the (single-core) sender costs as few time
    // slices as possible: the measurement is the monitor's intake, and a
    // syscall-per-datagram blaster would throttle both modes equally and
    // mask the receive-path difference.
    let t0 = Instant::now();
    let mut arena = [[0u8; WIRE_SIZE]; 64];
    let mut sent = 0u64;
    let mut seq = 0u64;
    let mut stream = 0u64;
    while sent < total {
        let want = 64.min((total - sent) as usize);
        for slot in arena.iter_mut().take(want) {
            if stream == 0 {
                seq += 1;
            }
            let hb = Heartbeat {
                stream,
                seq,
                sent_at: Nanos(sent),
                incarnation: 0,
            };
            hb.encode_into(slot);
            stream = (stream + 1) % streams;
        }
        let refs: Vec<&[u8]> = arena[..want].iter().map(|b| &b[..]).collect();
        match twofd_net::intake::send_batch(&sock, &refs) {
            Ok(n) => sent += n as u64,
            Err(_) => break,
        }
    }
    // Drain window: sample until `received` stops growing, crediting
    // intake with the instant of its last progress.
    let mut last = 0u64;
    let mut last_growth = Instant::now();
    loop {
        std::thread::sleep(Duration::from_millis(20));
        let now = monitor.received();
        if now > last {
            last = now;
            last_growth = Instant::now();
        } else if last_growth.elapsed() > Duration::from_millis(200) {
            break;
        }
    }
    let stats = monitor.stats();
    assert_eq!(
        stats.received(),
        stats.applied() + stats.dropped(),
        "UDP-path accounting must reconcile ({mode:?})"
    );
    let elapsed = last_growth.duration_since(t0);
    (
        last as f64 / elapsed.as_secs_f64(),
        last as f64 / sent as f64,
    )
}
