//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Number of windows** — does a third window between the short and
//!    long ones buy anything? (Generalized MW-FD vs the paper's 2W.)
//! 2. **The `max` combination rule** — 2W's max of two expected-arrival
//!    estimates vs a single Chen window of intermediate size (is the
//!    benefit really the combination, not just a mid-size window?).
//! 3. **Worm-period congestion structure** — sustained vs episodic vs
//!    smooth congestion in the synthetic trace: where does the 2W
//!    advantage over the single-window detectors come from?
//!
//! Run: `cargo bench -p twofd-bench --bench ablation`

use twofd_bench::{samples_from_env, sweep, Figure, Series, MARGIN_SWEEP};
use twofd_core::DetectorSpec;
use twofd_trace::WanTraceConfig;

fn main() {
    let samples = samples_from_env(60_000);
    eprintln!("[ablation] WAN trace with {samples} heartbeats…");
    let trace = WanTraceConfig::small(samples, 0x2BFD_0001).generate();

    // ---- 1. Window count.
    let mut fig = Figure::new(
        "Ablation 1: number of windows (T_MR vs T_D)",
        &["td_s", "tmr_per_s"],
    );
    for spec in [
        DetectorSpec::Chen { window: 1 },
        DetectorSpec::TwoWindow { n1: 1, n2: 1000 },
        DetectorSpec::MultiWindow {
            windows: vec![1, 30, 1000],
        },
        DetectorSpec::MultiWindow {
            windows: vec![1, 10, 100, 1000],
        },
    ] {
        let curve = sweep(&spec, &trace, &MARGIN_SWEEP);
        let mut s = Series::new(curve.label.clone());
        for p in &curve.points {
            s.push(vec![p.td, p.tmr]);
        }
        fig.add(s);
    }
    fig.print();

    // ---- 2. Max-combination vs a mid-size single window.
    let mut fig = Figure::new(
        "Ablation 2: max-combination vs mid-size single windows (T_MR vs T_D)",
        &["td_s", "tmr_per_s"],
    );
    for spec in [
        DetectorSpec::TwoWindow { n1: 1, n2: 1000 },
        DetectorSpec::Chen { window: 30 },
        DetectorSpec::Chen { window: 100 },
        DetectorSpec::Chen { window: 300 },
    ] {
        let curve = sweep(&spec, &trace, &MARGIN_SWEEP);
        let mut s = Series::new(curve.label.clone());
        for p in &curve.points {
            s.push(vec![p.td, p.tmr]);
        }
        fig.add(s);
    }
    fig.print();

    // ---- 3. Congestion structure of the worm period.
    let mut fig = Figure::new(
        "Ablation 3: worm congestion structure — 2W advantage over Chen(1) at Δto = 50 ms",
        &["2w_mistakes", "chen1_mistakes", "chen1000_mistakes"],
    );
    type Tweak = Box<dyn Fn(&mut WanTraceConfig)>;
    let variants: [(&str, Tweak); 3] = [
        (
            "spike-trains (default)",
            Box::new(|_cfg: &mut WanTraceConfig| {}),
        ),
        (
            "sustained dense spikes",
            Box::new(|cfg: &mut WanTraceConfig| {
                cfg.worm_episode_onset = 1.0;
                cfg.worm_episode_end = 0.0;
                cfg.worm_spike_prob = 0.35;
            }),
        ),
        (
            "smooth elevated (no spikes)",
            Box::new(|cfg: &mut WanTraceConfig| {
                cfg.worm_spike_prob = 0.0;
                cfg.worm_delay_std = 0.06;
            }),
        ),
    ];
    for (name, tweak) in variants {
        let mut cfg = WanTraceConfig::small(samples, 0x2BFD_0001);
        tweak(&mut cfg);
        let t = cfg.generate();
        let count = |spec: DetectorSpec| {
            let mut fd = spec.build(t.interval, 0.05);
            twofd_core::replay(fd.as_mut(), &t).metrics().mistakes as f64
        };
        let mut s = Series::new(name);
        s.push(vec![
            count(DetectorSpec::TwoWindow { n1: 1, n2: 1000 }),
            count(DetectorSpec::Chen { window: 1 }),
            count(DetectorSpec::Chen { window: 1000 }),
        ]);
        fig.add(s);
    }
    fig.print();
}
