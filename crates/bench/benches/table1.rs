//! Regenerates Table I: the WAN trace's segment boundaries and the
//! per-segment network statistics of the synthetic reproduction.
//!
//! Run: `cargo bench -p twofd-bench --bench table1`
//! Scale with `TWOFD_BENCH_SAMPLES` (paper: 5,845,712).

use twofd_bench::{samples_from_env, table1_report};

fn main() {
    let samples = samples_from_env(200_000);
    eprintln!("[table1] generating WAN trace with {samples} heartbeats…");
    table1_report(samples, 0x2BFD_0001).print();
}
