//! # twofd-bench — benchmark and figure-regeneration harnesses
//!
//! One bench target per table/figure of the paper (run with
//! `cargo bench -p twofd-bench --bench <name>`):
//!
//! | target | paper content |
//! |---|---|
//! | `table1` | Table I segment boundaries + per-segment trace stats |
//! | `fig4_5` | 2W-FD window-size sweep (T_MR and P_A vs T_D) |
//! | `fig6_7` | algorithm comparison (T_MR and P_A vs T_D) |
//! | `fig8` | per-segment mistakes at fixed T_D = 215 ms |
//! | `fig9` | mistake containment 2W vs Chen(n1)/Chen(n2) |
//! | `fig10_12` | configuration-procedure sweeps (Δi, Δto) |
//! | `service_load` | §V-C shared-service QoS + network load |
//! | `micro` | Criterion micro-benchmarks (per-heartbeat cost) |
//!
//! Set `TWOFD_BENCH_SAMPLES` to scale trace sizes (default differs per
//! target; the paper's WAN trace is 5,845,712 samples).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;

pub use experiments::*;
pub use report::{samples_from_env, Figure, Series};
