//! Plain-text reporting for the figure/table harnesses.
//!
//! Every bench target prints the same rows/series the paper's figures
//! plot, in aligned plain text plus a machine-readable CSV block, so
//! EXPERIMENTS.md can record paper-vs-measured without extra tooling.

/// One curve of a figure: a label plus `(x, y…)` rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Curve label (e.g. `2w-fd(1,1000)`).
    pub label: String,
    /// Data rows; all rows share the column layout of the parent figure.
    pub rows: Vec<Vec<f64>>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Vec<f64>) {
        self.rows.push(row);
    }
}

/// A complete figure: title, column names, and one or more series.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// e.g. `"Figure 6: mistake rate vs detection time (WAN)"`.
    pub title: String,
    /// Column names, starting with the x-axis.
    pub columns: Vec<String>,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Figure {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn add(&mut self, series: Series) {
        assert!(
            series.rows.iter().all(|r| r.len() == self.columns.len()),
            "series {:?} has rows not matching the column layout",
            series.label
        );
        self.series.push(series);
    }

    /// Renders the aligned human-readable block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        for s in &self.series {
            out.push_str(&format!("\n-- {} --\n", s.label));
            let widths: Vec<usize> = self.columns.iter().map(|c| c.len().max(12)).collect();
            for (c, w) in self.columns.iter().zip(&widths) {
                out.push_str(&format!("{c:>w$} ", w = w));
            }
            out.push('\n');
            for row in &s.rows {
                for (v, w) in row.iter().zip(&widths) {
                    out.push_str(&format!("{:>w$} ", format_value(*v), w = w));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Renders the machine-readable CSV block (one `series` column).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# csv {}\n", self.title));
        out.push_str("series,");
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for s in &self.series {
            for row in &s.rows {
                out.push_str(&s.label);
                for v in row {
                    out.push_str(&format!(",{v}"));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Prints both renderings to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
        println!("{}", self.render_csv());
    }
}

/// Compact numeric formatting: scientific for very small/large values.
fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.is_infinite() {
        "inf".to_string()
    } else if v.abs() < 1e-3 || v.abs() >= 1e6 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

/// Reads the heartbeat-count scale for the harnesses from
/// `TWOFD_BENCH_SAMPLES` (default `default`). Larger = closer to the
/// paper's 5.8 M-sample traces, slower to run.
pub fn samples_from_env(default: u64) -> u64 {
    std::env::var("TWOFD_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure() -> Figure {
        let mut f = Figure::new("Test figure", &["td_s", "tmr_per_s"]);
        let mut s = Series::new("algo");
        s.push(vec![0.215, 0.001]);
        s.push(vec![0.5, 1e-7]);
        f.add(s);
        f
    }

    #[test]
    fn render_contains_labels_and_values() {
        let text = figure().render();
        assert!(text.contains("Test figure"));
        assert!(text.contains("algo"));
        assert!(text.contains("0.2150"));
        assert!(text.contains("1.000e-7"));
    }

    #[test]
    fn csv_has_one_row_per_point() {
        let csv = figure().render_csv();
        let data_rows: Vec<_> = csv.lines().filter(|l| l.starts_with("algo,")).collect();
        assert_eq!(data_rows.len(), 2);
        assert_eq!(data_rows[0], "algo,0.215,0.001");
    }

    #[test]
    #[should_panic(expected = "not matching the column layout")]
    fn mismatched_row_width_rejected() {
        let mut f = Figure::new("bad", &["a", "b"]);
        let mut s = Series::new("s");
        s.push(vec![1.0]);
        f.add(s);
    }

    #[test]
    fn value_formatting() {
        assert_eq!(format_value(0.0), "0");
        assert_eq!(format_value(0.215), "0.2150");
        assert_eq!(format_value(1e-8), "1.000e-8");
        assert_eq!(format_value(f64::INFINITY), "inf");
    }

    #[test]
    fn env_scale_defaults() {
        std::env::remove_var("TWOFD_BENCH_SAMPLES");
        assert_eq!(samples_from_env(1234), 1234);
    }
}
