//! The paper's experiments as reusable functions.
//!
//! Each function regenerates the data behind one table or figure of the
//! paper's evaluation (§IV) or service analysis (§V). The bench targets
//! in `benches/` are thin wrappers that pick sample counts and print the
//! results; integration tests call the same functions at smaller scale
//! to assert the paper's qualitative claims.

use crate::report::{Figure, Series};
use twofd_core::{
    calibrate, mistakes_by_segment, replay, DetectorSpec, Mistake, NetworkBehavior, QosSpec,
};
use twofd_service::{analyze, load_report, AppRegistry, ServiceAnalysis};
use twofd_sim::time::Span;
use twofd_trace::{table1_segments, Trace, TraceStats, WanTraceConfig};

/// Default Δto sweep (seconds) for the Chen-family detectors.
pub const MARGIN_SWEEP: [f64; 10] = [0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 4.0];
/// Default threshold sweep for the accrual detectors (Φ for φ, κ for ED).
pub const THRESHOLD_SWEEP: [f64; 10] = [0.3, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0];

/// One point of a detection-time/accuracy sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The knob value that produced this point.
    pub tuning: f64,
    /// Average detection time, seconds (the figures' x-axis).
    pub td: f64,
    /// Mistake rate, per second (Figures 4/6 y-axis).
    pub tmr: f64,
    /// Query accuracy probability (Figures 5/7 y-axis).
    pub pa: f64,
    /// Average mistake duration, seconds.
    pub tm: f64,
    /// Raw mistake count.
    pub mistakes: u64,
}

/// A detector's full sweep curve.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCurve {
    /// The detector's label.
    pub label: String,
    /// Points ordered by increasing knob value.
    pub points: Vec<SweepPoint>,
}

/// Sweeps one detector's knob over `tunings` on `trace`.
pub fn sweep(spec: &DetectorSpec, trace: &Trace, tunings: &[f64]) -> SweepCurve {
    let points = tunings
        .iter()
        .map(|&tuning| {
            let mut fd = spec.build_any(trace.interval, tuning);
            let m = replay(&mut fd, trace).metrics();
            SweepPoint {
                tuning,
                td: m.detection_time,
                tmr: m.mistake_rate,
                pa: m.query_accuracy,
                tm: m.avg_mistake_duration,
                mistakes: m.mistakes,
            }
        })
        .collect();
    SweepCurve {
        label: spec.label(),
        points,
    }
}

/// **Figures 4 & 5** — 2W-FD window-size sweep on the WAN trace:
/// T_MR vs T_D and P_A vs T_D for several `(n1, n2)` pairs.
pub fn fig4_5_window_sweep(trace: &Trace, pairs: &[(usize, usize)]) -> Vec<SweepCurve> {
    pairs
        .iter()
        .map(|&(n1, n2)| sweep(&DetectorSpec::TwoWindow { n1, n2 }, trace, &MARGIN_SWEEP))
        .collect()
}

/// The paper's window pairs for Figures 4/5 (small × large grid).
pub fn paper_window_pairs() -> Vec<(usize, usize)> {
    vec![
        (1, 1),
        (1, 100),
        (1, 1000),
        (1, 10_000),
        (10, 1000),
        (100, 1000),
        (1000, 10_000),
        (10_000, 10_000),
    ]
}

/// **Figures 6 & 7** — the algorithm comparison: 2W(1,1000), Chen(1),
/// Chen(1000), φ(1000), ED(1000) as curves, Bertier(1000) as one point.
pub fn fig6_7_comparison(trace: &Trace) -> Vec<SweepCurve> {
    let mut curves = Vec::new();
    for spec in DetectorSpec::paper_comparison() {
        let tunings: &[f64] = match &spec {
            DetectorSpec::Bertier { .. } => &[0.0],
            DetectorSpec::Phi { .. } | DetectorSpec::Ed { .. } => &THRESHOLD_SWEEP,
            _ => &MARGIN_SWEEP,
        };
        curves.push(sweep(&spec, trace, tunings));
    }
    curves
}

/// One detector's per-segment mistake counts (Figure 8 rows).
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentedMistakes {
    /// Detector label.
    pub label: String,
    /// The knob value used to hit the target detection time.
    pub tuning: f64,
    /// Detection time actually achieved, seconds.
    pub achieved_td: f64,
    /// Mistake count per segment, in Table-I order.
    pub per_segment: Vec<u64>,
    /// Total mistakes.
    pub total: u64,
}

/// **Figure 8** — mistakes per Table-I segment at a fixed detection
/// time. Detectors that cannot be calibrated to `target_td` (Bertier, or
/// an out-of-range target) are skipped, mirroring the paper ("the only
/// failure detector that can not be parametrized to obtain this T_D is
/// Bertier's").
pub fn fig8_segment_analysis(trace: &Trace, target_td: f64) -> Vec<SegmentedMistakes> {
    let segments = table1_segments(trace.sent() as u64);
    let mut out = Vec::new();
    for spec in DetectorSpec::paper_comparison() {
        let Some(cal) = calibrate(&spec, trace, target_td, 0.002, 60.0) else {
            continue;
        };
        let mut fd = spec.build_any(trace.interval, cal.tuning);
        let result = replay(&mut fd, trace);
        let per_segment = mistakes_by_segment(&result.mistakes, &segments);
        out.push(SegmentedMistakes {
            label: spec.label(),
            tuning: cal.tuning,
            achieved_td: cal.achieved_td,
            per_segment,
            total: result.mistakes.len() as u64,
        });
    }
    out
}

/// **Figure 9** — the mistake-containment illustration: which mistakes
/// 2W(n1,n2), Chen(n1) and Chen(n2) make at the same detection time.
#[derive(Debug, Clone, PartialEq)]
pub struct MistakeOverlap {
    /// Mistakes of 2W-FD(n1,n2).
    pub two_w: Vec<Mistake>,
    /// Mistakes of Chen(n1).
    pub chen_small: Vec<Mistake>,
    /// Mistakes of Chen(n2).
    pub chen_large: Vec<Mistake>,
    /// How many 2W mistakes temporally overlap a Chen(n1) mistake AND a
    /// Chen(n2) mistake (Eq. 13 predicts: all of them).
    pub contained: usize,
    /// The rigorous form of Eq. 13: whether the 2W suspicion *point set*
    /// is contained in each Chen detector's suspicion point set.
    pub point_set_contained: bool,
}

/// Runs the Figure 9 experiment.
///
/// §IV-C2: "Chen and the MW failure detectors share a common tuning
/// parameter, the safety margin Δto" — so the experiment calibrates the
/// 2W-FD to the target detection time and runs both Chen detectors with
/// the **same** Δto, which is the premise under which Eq. 13 holds.
pub fn fig9_mistake_overlap(trace: &Trace, n1: usize, n2: usize, target_td: f64) -> MistakeOverlap {
    let two_spec = DetectorSpec::TwoWindow { n1, n2 };
    let cal = calibrate(&two_spec, trace, target_td, 0.002, 60.0)
        .expect("calibration in range for the 2W-FD");
    let run = |spec: &DetectorSpec| -> Vec<Mistake> {
        let mut fd = spec.build_any(trace.interval, cal.tuning);
        replay(&mut fd, trace).mistakes
    };
    let two_w = run(&two_spec);
    let chen_small = run(&DetectorSpec::Chen { window: n1 });
    let chen_large = run(&DetectorSpec::Chen { window: n2 });
    let overlaps =
        |m: &Mistake, log: &[Mistake]| log.iter().any(|o| m.start < o.end && o.start < m.end);
    let contained = two_w
        .iter()
        .filter(|m| overlaps(m, &chen_small) && overlaps(m, &chen_large))
        .count();
    let start = trace.arrivals().first().map(|a| a.at).unwrap_or_default();
    let end = trace.end_time();
    let tl = |log: &[Mistake]| twofd_core::Timeline::from_mistakes(log, start, end);
    let tl_two = tl(&two_w);
    let point_set_contained = tl_two.suspicion_contained_in(&tl(&chen_small))
        && tl_two.suspicion_contained_in(&tl(&chen_large));
    MistakeOverlap {
        two_w,
        chen_small,
        chen_large,
        contained,
        point_set_contained,
    }
}

/// One row of the Figure 10/11/12 parameter sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfigPoint {
    /// The swept requirement value.
    pub x: f64,
    /// Resulting heartbeat interval Δi, seconds.
    pub delta_i: f64,
    /// Resulting safety margin Δto, seconds.
    pub delta_to: f64,
}

/// **Figures 10–12** — Chen's configuration procedure under variation of
/// one requirement at a time. Returns `(fig10, fig11, fig12)` point
/// sets: Δi/Δto vs T_Dᵁ, vs T_MRᵁ, vs T_Mᵁ.
pub fn fig10_12_config_sweeps(
    net: &NetworkBehavior,
    base: &QosSpec,
) -> (Vec<ConfigPoint>, Vec<ConfigPoint>, Vec<ConfigPoint>) {
    let run = |spec: QosSpec, x: f64| -> Option<ConfigPoint> {
        twofd_core::configure(&spec, net)
            .ok()
            .map(|cfg| ConfigPoint {
                x,
                delta_i: cfg.interval.as_secs_f64(),
                delta_to: cfg.safety_margin.as_secs_f64(),
            })
    };

    let fig10 = (1..=20)
        .filter_map(|i| {
            let td = 0.25 * i as f64;
            run(
                QosSpec {
                    detection_time: td,
                    ..*base
                },
                td,
            )
        })
        .collect();

    let fig11 = [
        1.0,
        2.0,
        4.0,
        8.0,
        16.0,
        32.0,
        56.0,
        100.0,
        300.0,
        1_000.0,
        3_600.0,
        86_400.0,
        604_800.0,
        2_592_000.0,
    ]
    .iter()
    .filter_map(|&tmr| {
        run(
            QosSpec {
                mistake_recurrence: tmr,
                ..*base
            },
            tmr,
        )
    })
    .collect();

    let fig12 = [0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.0, 1.5, 2.0, 3.0, 5.0]
        .iter()
        .filter_map(|&tm| {
            run(
                QosSpec {
                    mistake_duration: tm,
                    ..*base
                },
                tm,
            )
        })
        .collect();

    (fig10, fig11, fig12)
}

/// **Table I + trace validation** — generates the WAN trace at the given
/// scale and reports the segment boundaries and per-segment statistics.
pub fn table1_report(samples: u64, seed: u64) -> Figure {
    let cfg = WanTraceConfig::small(samples, seed);
    let trace = cfg.generate();
    let segments = table1_segments(samples);
    let mut fig = Figure::new(
        format!("Table I: WAN subsamples at scale {samples} (paper: 5,845,712)"),
        &[
            "from_seq",
            "to_seq",
            "loss_rate",
            "delay_mean_s",
            "delay_p99_s",
        ],
    );
    for seg in &segments {
        let sub = seg.slice(&trace);
        let stats = TraceStats::compute(&sub);
        let mut s = Series::new(seg.name.clone());
        s.push(vec![
            seg.from_seq as f64,
            (seg.to_seq - 1) as f64,
            stats.loss_rate,
            stats.delay_mean,
            stats.delay_percentiles.2,
        ]);
        fig.add(s);
    }
    fig
}

/// **§V-C** — the shared-service experiment: per-app QoS shared vs.
/// dedicated plus the network-load comparison.
///
/// Outages are scripted as *wall-clock* windows so every deployment
/// (one trace per distinct heartbeat interval) experiences the same
/// network events — a heartbeat is lost iff it is sent during an
/// outage. This is what makes the comparison meaningful: an adapted
/// application's widened margin rides out outages that its dedicated
/// configuration (slower heartbeats, smaller margin) does not.
pub fn service_experiment(
    registry: &AppRegistry,
    net: &NetworkBehavior,
    horizon: Span,
    seed: u64,
    trace_secs: f64,
) -> Result<ServiceAnalysis, twofd_service::CombineError> {
    use twofd_sim::{DelaySpec, DistSpec, LossSpec, NetworkScenario, SimRng};
    use twofd_trace::generate_scripted;

    // Outage script: Poisson arrivals (mean gap 120 s), duration
    // uniform in [1, 4] s — identical for every deployment.
    let mut rng = SimRng::seed_from_u64(seed ^ 0x07A6E);
    let mut outages: Vec<(u64, u64)> = Vec::new();
    let mut t = 0.0;
    loop {
        t += rng.exponential(120.0);
        if t >= trace_secs {
            break;
        }
        let duration = rng.uniform_range(1.0, 4.0);
        outages.push((
            Span::from_secs_f64(t).0,
            Span::from_secs_f64(t + duration).0,
        ));
        t += duration;
    }

    let delay_std = net.delay_var.sqrt();
    let trace_for_interval = |interval: Span| {
        let n = (trace_secs / interval.as_secs_f64()).ceil() as u64;
        let scenario = NetworkScenario::uniform(
            "service",
            n.max(2),
            DelaySpec::Iid {
                dist: DistSpec::LogNormal {
                    mean: (3.0 * delay_std).max(0.001),
                    std_dev: delay_std.max(1e-5),
                },
                floor_nanos: 100_000,
            },
            LossSpec::Scripted {
                base: Box::new(LossSpec::Bernoulli { p: net.loss_prob }),
                windows: outages.clone(),
            },
        );
        generate_scripted("service", interval, scenario, seed, None)
    };
    analyze(
        registry,
        net,
        &DetectorSpec::Chen { window: 1000 },
        horizon,
        trace_for_interval,
    )
}

/// Renders a set of sweep curves as a two-figure pair (T_MR vs T_D and
/// P_A vs T_D), the layout of Figures 4/5 and 6/7.
pub fn render_sweep_figures(title_prefix: &str, curves: &[SweepCurve]) -> (Figure, Figure) {
    let mut tmr = Figure::new(
        format!("{title_prefix}: mistake rate vs detection time"),
        &["td_s", "tmr_per_s", "mistakes"],
    );
    let mut pa = Figure::new(
        format!("{title_prefix}: query accuracy vs detection time"),
        &["td_s", "pa"],
    );
    for c in curves {
        let mut s1 = Series::new(c.label.clone());
        let mut s2 = Series::new(c.label.clone());
        for p in &c.points {
            s1.push(vec![p.td, p.tmr, p.mistakes as f64]);
            s2.push(vec![p.td, p.pa]);
        }
        tmr.add(s1);
        pa.add(s2);
    }
    (tmr, pa)
}

/// Renders the Figure 8 per-segment counts.
pub fn render_fig8(rows: &[SegmentedMistakes], segment_names: &[String]) -> Figure {
    let mut cols: Vec<&str> = vec!["achieved_td_s"];
    let names: Vec<String> = segment_names.to_vec();
    for n in &names {
        cols.push(n.as_str());
    }
    cols.push("total");
    let mut fig = Figure::new("Figure 8: mistakes per WAN segment at fixed T_D", &cols);
    for row in rows {
        let mut s = Series::new(row.label.clone());
        let mut r = vec![row.achieved_td];
        r.extend(row.per_segment.iter().map(|&c| c as f64));
        r.push(row.total as f64);
        s.push(r);
        fig.add(s);
    }
    fig
}

/// Renders a Figure 10/11/12 sweep.
pub fn render_config_sweep(title: &str, xlabel: &str, points: &[ConfigPoint]) -> Figure {
    let mut fig = Figure::new(title, &[xlabel, "delta_i_s", "delta_to_s"]);
    let mut s = Series::new("configuration");
    for p in points {
        s.push(vec![p.x, p.delta_i, p.delta_to]);
    }
    fig.add(s);
    fig
}

/// Renders the service experiment.
pub fn render_service(analysis: &ServiceAnalysis) -> Figure {
    let mut fig = Figure::new(
        "Shared FD service: per-app QoS and network load",
        &[
            "adapted",
            "ded_tmr_per_s",
            "shr_tmr_per_s",
            "ded_tm_s",
            "shr_tm_s",
            "ded_pa",
            "shr_pa",
        ],
    );
    for app in &analysis.apps {
        let mut s = Series::new(app.name.clone());
        s.push(vec![
            if app.adapted { 1.0 } else { 0.0 },
            app.dedicated.mistake_rate,
            app.shared.mistake_rate,
            app.dedicated.avg_mistake_duration,
            app.shared.avg_mistake_duration,
            app.dedicated.query_accuracy,
            app.shared.query_accuracy,
        ]);
        fig.add(s);
    }
    let report = load_report(&analysis.config, Span::from_secs(3600));
    let mut s = Series::new("network-load (msgs/s, over 1h)");
    s.push(vec![
        0.0,
        report.shared_rate,
        report.dedicated_rate,
        report.reduction_factor,
        report.shared_messages as f64,
        report.dedicated_messages as f64,
        report.messages_saved as f64,
    ]);
    fig.add(s);
    fig
}
