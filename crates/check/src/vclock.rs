//! Vector clocks for happens-before tracking.
//!
//! Every modeled thread carries a [`VClock`]; synchronization objects
//! (mutexes, condvars, atomic store events) carry clocks too, and the
//! engine joins them at each release/acquire edge. Two events are
//! ordered iff one's clock is ≤ the other's at every component, which
//! is exactly the partial order the memory model's visibility rule
//! consults when deciding which store events a load may observe.

/// A grow-on-demand vector clock indexed by thread id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock {
    ticks: Vec<u64>,
}

impl VClock {
    /// The empty clock (happens-before nothing).
    pub fn new() -> Self {
        VClock { ticks: Vec::new() }
    }

    /// This clock's component for `tid` (0 if never set).
    pub fn get(&self, tid: usize) -> u64 {
        self.ticks.get(tid).copied().unwrap_or(0)
    }

    /// Sets `tid`'s component to `tick`.
    pub fn set(&mut self, tid: usize, tick: u64) {
        if self.ticks.len() <= tid {
            self.ticks.resize(tid + 1, 0);
        }
        self.ticks[tid] = tick;
    }

    /// Advances `tid`'s own component by one and returns the new tick.
    pub fn tick(&mut self, tid: usize) -> u64 {
        let next = self.get(tid) + 1;
        self.set(tid, next);
        next
    }

    /// Componentwise maximum: after `self.join(other)`, everything that
    /// happened-before `other` also happens-before `self`.
    pub fn join(&mut self, other: &VClock) {
        if self.ticks.len() < other.ticks.len() {
            self.ticks.resize(other.ticks.len(), 0);
        }
        for (i, &t) in other.ticks.iter().enumerate() {
            if self.ticks[i] < t {
                self.ticks[i] = t;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_empty() {
        let c = VClock::new();
        assert_eq!(c.get(0), 0);
        assert_eq!(c.get(17), 0);
    }

    #[test]
    fn tick_advances_own_component() {
        let mut c = VClock::new();
        assert_eq!(c.tick(2), 1);
        assert_eq!(c.tick(2), 2);
        assert_eq!(c.get(2), 2);
        assert_eq!(c.get(0), 0);
    }

    #[test]
    fn join_takes_componentwise_max() {
        let mut a = VClock::new();
        a.set(0, 3);
        a.set(1, 1);
        let mut b = VClock::new();
        b.set(1, 5);
        b.set(2, 2);
        a.join(&b);
        assert_eq!(a.get(0), 3);
        assert_eq!(a.get(1), 5);
        assert_eq!(a.get(2), 2);
    }
}
