//! Instrumented `std::thread` stand-ins (`spawn` / `JoinHandle`).
//!
//! Outside a model run these delegate to `std::thread`. Inside one,
//! spawned closures run on real OS threads serialized by the engine
//! scheduler, with spawn and join contributing happens-before edges.

use std::sync::{Arc, Mutex};

use crate::engine::{current, Engine};

enum Handle<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        engine: Arc<Engine>,
        tid: usize,
        slot: Arc<Mutex<Option<T>>>,
    },
}

/// Handle to a spawned (possibly modeled) thread.
pub struct JoinHandle<T> {
    handle: Handle<T>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    ///
    /// On the modeled path this never returns `Err`: a panicking model
    /// thread fails the whole execution, which the checker reports with
    /// the failing schedule instead.
    pub fn join(self) -> std::thread::Result<T> {
        match self.handle {
            Handle::Std(h) => h.join(),
            Handle::Model { engine, tid, slot } => {
                let (_, me) = current().expect("model JoinHandle joined outside its model run");
                engine.thread_join(me, tid);
                let value = slot
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("joined model thread finished without a result");
                Ok(value)
            }
        }
    }
}

/// Spawns a thread running `f`; a drop-in for `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match current() {
        None => JoinHandle {
            handle: Handle::Std(std::thread::spawn(f)),
        },
        Some((engine, me)) => {
            let slot: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
            let slot2 = Arc::clone(&slot);
            let tid = engine.thread_spawn(
                me,
                Box::new(move || {
                    let value = f();
                    *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
                }),
            );
            JoinHandle {
                handle: Handle::Model { engine, tid, slot },
            }
        }
    }
}
