//! `twofd-check`: a vendored, dependency-free bounded model checker
//! for the 2W-FD concurrency core.
//!
//! In the mold of loom/CDSChecker: production code compiles against
//! instrumented [`sync`] / [`thread`] shims (via `#[cfg(twofd_check)]`
//! facades in `crossbeam` and `twofd-obs`), and [`model`] exhaustively
//! explores thread interleavings and relaxed-memory value choices under
//! a deterministic scheduler, bounded by a preemption budget and an
//! iteration cap. On failure it prints the full operation trace plus a
//! schedule seed that [`Builder::replay_seed`] re-executes exactly.
//!
//! ```
//! use twofd_check::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! twofd_check::model(|| {
//!     let flag = Arc::new(AtomicU64::new(0));
//!     let f2 = Arc::clone(&flag);
//!     let t = twofd_check::thread::spawn(move || f2.store(1, Ordering::Release));
//!     let seen = flag.load(Ordering::Acquire);
//!     assert!(seen == 0 || seen == 1);
//!     t.join().unwrap();
//! });
//! ```
//!
//! What the model covers, and its deliberate approximations, are
//! documented on the [`engine`](self) module (see `engine.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod vclock;

pub mod sync;
pub mod thread;

pub use engine::{model, Builder, Failure, Report};
