//! The model-checking engine: a deterministic scheduler plus a
//! happens-before memory model.
//!
//! # How an execution runs
//!
//! Real OS threads execute the test closure, but the engine serializes
//! them: exactly one thread holds the "active" token at a time, and
//! every instrumented operation (atomic access, mutex lock, condvar
//! wait/notify, spawn/join) is an *operation point* where the scheduler
//! may hand the token to another runnable thread. All nondeterminism —
//! which thread runs next, which store a relaxed load observes — flows
//! through [`EngineState::decide`], which records each choice on a
//! decision path. The controller re-runs the closure, advancing the
//! path depth-first (last choice incremented, suffix truncated) until
//! the space is exhausted or the iteration cap is hit.
//!
//! # Memory model
//!
//! Each atomic variable keeps its full store history for the current
//! execution. Stores tagged `Release` (or stronger) carry the storing
//! thread's vector clock as their message; `Relaxed` stores carry an
//! empty message. A load may observe any store that is (a) not older
//! than the thread's per-variable read frontier (read coherence), (b)
//! not hidden by a later store that already happened-before the reader,
//! and (c) for `SeqCst` loads, not older than the latest `SeqCst`
//! store. `Acquire` (or stronger) loads join the observed store's
//! message into the reader's clock. Read-modify-writes always read the
//! latest store (atomicity) and their store inherits the previous
//! message (release sequences). Which visible store a load observes is
//! itself a branch point, so stale-read bugs are found even with a
//! preemption bound of zero.
//!
//! # Approximations (documented, deliberate)
//!
//! - Mutex unlock is not a preemption point: a schedule where another
//!   thread runs between the last critical-section op and the unlock is
//!   explored as the schedule where it runs before the lock release.
//! - `SeqCst` is modeled as `AcqRel` plus "loads cannot observe stores
//!   older than the latest `SeqCst` store" — slightly weaker than the
//!   single total order, never unsound for the invariants checked here.
//! - `notify_one` wakes the longest-waiting thread (FIFO) rather than
//!   branching over waiters.
//! - Mutex poisoning is not modeled; condvar timeouts never fire (a
//!   wait that would time out must be woken or it is a deadlock).
//! - `compare_exchange_weak` never fails spuriously.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::AtomicU64 as StdAtomicU64;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};

use crate::vclock::VClock;

/// Panic payload used to unwind model threads when an execution is torn
/// down (failure elsewhere, or budget exhausted). Never user-visible.
pub(crate) struct Abort;

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Engine>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The engine and thread id of the model execution this OS thread is
/// part of, if any. Instrumented types consult this to decide between
/// the std delegate path and the modeled path.
pub(crate) fn current() -> Option<(Arc<Engine>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn in_model() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

static PANIC_HOOK: Once = Once::new();

/// Installs (once, process-wide) a panic hook that suppresses output
/// for panics raised on model threads: assertion failures there are
/// captured and re-reported with the failing schedule, and `Abort`
/// unwinds are internal. Panics outside model threads print as usual.
fn install_panic_hook() {
    PANIC_HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !in_model() {
                prev(info);
            }
        }));
    });
}

/// Scheduling state of one modeled thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadStatus {
    Runnable,
    BlockedMutex(usize),
    BlockedCondvar(usize),
    BlockedJoin(usize),
    Finished,
}

#[derive(Debug)]
struct ThreadInfo {
    status: ThreadStatus,
    clock: VClock,
}

#[derive(Debug, Default)]
struct MutexState {
    held_by: Option<usize>,
    /// Clock released into the mutex at the last unlock; joined by the
    /// next locker (the mutex happens-before edge).
    clock: VClock,
}

#[derive(Debug, Default)]
struct CondvarState {
    /// Waiting thread ids in arrival order.
    waiters: Vec<usize>,
}

/// One store event in an atomic variable's modification history.
#[derive(Debug, Clone)]
pub(crate) struct StoreEv {
    value: u64,
    /// Storing thread (`usize::MAX` for the initial value).
    tid: usize,
    /// The storing thread's own clock component at the store (0 for the
    /// initial value). A store happened-before a reader iff the
    /// reader's clock has `get(tid) >= tick`.
    tick: u64,
    /// Message carried to acquiring loads: the storer's clock for
    /// release stores, empty for relaxed stores.
    msg: VClock,
}

/// Per-atomic-variable model state, owned by the atomic shim and reset
/// lazily when the engine's execution epoch moves past it.
#[derive(Debug, Default)]
pub(crate) struct VarState {
    epoch: u64,
    id: usize,
    stores: Vec<StoreEv>,
    /// Per-thread read frontier: index of the newest store each thread
    /// has observed (coherence: reads never go backwards).
    frontier: Vec<usize>,
    /// Index of the latest SeqCst store.
    last_sc: usize,
}

/// One recorded nondeterministic choice.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Choice {
    picked: usize,
    /// Number of alternatives at this point. 0 means "replay value not
    /// yet verified against a live execution".
    total: usize,
}

struct EngineState {
    /// Execution counter; per-object state (atomics, mutex/condvar
    /// registrations) is lazily reset when its epoch falls behind.
    epoch: u64,
    /// Thread id holding the run token (`usize::MAX` when the
    /// execution has completed).
    active: usize,
    threads: Vec<ThreadInfo>,
    path: Vec<Choice>,
    pos: usize,
    preemptions: usize,
    ops: usize,
    trace: Vec<(usize, String)>,
    failure: Option<String>,
    aborting: bool,
    mutexes: Vec<MutexState>,
    condvars: Vec<CondvarState>,
    next_atom: usize,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

impl EngineState {
    /// Consults (or extends) the decision path for a choice among
    /// `total` alternatives. Choices with a single alternative are not
    /// recorded, so callers must skip calling for `total <= 1`.
    fn decide(&mut self, total: usize) -> Result<usize, String> {
        debug_assert!(total > 1);
        let picked = if self.pos < self.path.len() {
            let c = &mut self.path[self.pos];
            if c.total == 0 {
                // Replay seed: adopt the live alternative count.
                c.total = total;
            } else if c.total != total {
                return Err(format!(
                    "nondeterministic execution: choice {} had {} alternatives, now {} \
                     (does the test use wall-clock time or OS randomness?)",
                    self.pos, c.total, total
                ));
            }
            if c.picked >= total {
                return Err(format!(
                    "invalid replay seed: choice {} picks {} of {}",
                    self.pos, c.picked, total
                ));
            }
            c.picked
        } else {
            self.path.push(Choice { picked: 0, total });
            0
        };
        self.pos += 1;
        Ok(picked)
    }

    fn runnable_except(&self, me: usize) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(tid, t)| *tid != me && t.status == ThreadStatus::Runnable)
            .map(|(tid, _)| tid)
            .collect()
    }

    fn all_finished(&self) -> bool {
        self.threads
            .iter()
            .all(|t| t.status == ThreadStatus::Finished)
    }

    /// Picks the next thread to hold the run token after the current
    /// one blocked or finished. Forced switches do not count against
    /// the preemption bound. Errors mean deadlock.
    fn pick_next(&mut self) -> Result<(), String> {
        let runnable: Vec<usize> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == ThreadStatus::Runnable)
            .map(|(tid, _)| tid)
            .collect();
        match runnable.len() {
            0 => {
                if self.all_finished() {
                    self.active = usize::MAX;
                    Ok(())
                } else {
                    let stuck: Vec<String> = self
                        .threads
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| t.status != ThreadStatus::Finished)
                        .map(|(tid, t)| format!("thread {tid} {:?}", t.status))
                        .collect();
                    Err(format!(
                        "deadlock: no runnable thread ({})",
                        stuck.join(", ")
                    ))
                }
            }
            1 => {
                self.active = runnable[0];
                Ok(())
            }
            n => {
                let pick = self.decide(n)?;
                self.active = runnable[pick];
                Ok(())
            }
        }
    }

    fn wake_mutex_waiters(&mut self, mid: usize) {
        for t in &mut self.threads {
            if t.status == ThreadStatus::BlockedMutex(mid) {
                t.status = ThreadStatus::Runnable;
            }
        }
    }
}

/// The shared model-checking engine for one [`Builder::check_result`]
/// run. One engine is reused across all explored executions.
pub(crate) struct Engine {
    state: Mutex<EngineState>,
    cv: Condvar,
    preemption_bound: usize,
    max_ops: usize,
}

impl Engine {
    fn new(preemption_bound: usize, max_ops: usize) -> Engine {
        Engine {
            state: Mutex::new(EngineState {
                epoch: 0,
                active: 0,
                threads: Vec::new(),
                path: Vec::new(),
                pos: 0,
                preemptions: 0,
                ops: 0,
                trace: Vec::new(),
                failure: None,
                aborting: false,
                mutexes: Vec::new(),
                condvars: Vec::new(),
                next_atom: 0,
                os_handles: Vec::new(),
            }),
            cv: Condvar::new(),
            preemption_bound,
            max_ops,
        }
    }

    /// Locks the engine state, shrugging off poisoning (aborted model
    /// threads may have unwound while another thread was parked in a
    /// condvar wait on this mutex).
    fn lock(&self) -> MutexGuard<'_, EngineState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records a failure, tears the execution down, and unwinds the
    /// calling model thread.
    fn fail(&self, mut st: MutexGuard<'_, EngineState>, msg: String) -> ! {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.aborting = true;
        self.cv.notify_all();
        drop(st);
        panic::panic_any(Abort);
    }

    fn abort_if_tearing_down<'a>(
        &self,
        st: MutexGuard<'a, EngineState>,
    ) -> MutexGuard<'a, EngineState> {
        if st.aborting {
            drop(st);
            panic::panic_any(Abort);
        }
        st
    }

    /// Parks the calling thread until it holds the run token again (or
    /// the execution is tearing down, in which case it unwinds).
    fn wait_turn<'a>(
        &'a self,
        mut st: MutexGuard<'a, EngineState>,
        me: usize,
    ) -> MutexGuard<'a, EngineState> {
        loop {
            st = self.abort_if_tearing_down(st);
            if st.active == me && st.threads[me].status == ThreadStatus::Runnable {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Marks the calling thread blocked, hands the token to another
    /// runnable thread (deadlock if none), and parks until woken and
    /// rescheduled.
    fn block_current<'a>(
        &'a self,
        mut st: MutexGuard<'a, EngineState>,
        me: usize,
        status: ThreadStatus,
    ) -> MutexGuard<'a, EngineState> {
        st.threads[me].status = status;
        if let Err(msg) = st.pick_next() {
            self.fail(st, msg);
        }
        self.cv.notify_all();
        self.wait_turn(st, me)
    }

    /// An operation point: the calling thread is about to perform a
    /// visible operation (`desc` goes into the trace). The scheduler
    /// may preempt here, handing the token to another runnable thread
    /// if the preemption budget allows.
    pub(crate) fn op_point(&self, me: usize, desc: String) {
        let mut st = self.lock();
        st = self.abort_if_tearing_down(st);
        st.ops += 1;
        if st.ops > self.max_ops {
            let msg = format!(
                "operation budget exceeded ({} ops): livelock, or raise Builder::max_ops",
                self.max_ops
            );
            self.fail(st, msg);
        }
        st.trace.push((me, desc));
        if st.preemptions >= self.preemption_bound {
            return;
        }
        let others = st.runnable_except(me);
        if others.is_empty() {
            return;
        }
        let pick = match st.decide(1 + others.len()) {
            Ok(p) => p,
            Err(msg) => self.fail(st, msg),
        };
        if pick > 0 {
            let next = others[pick - 1];
            st.preemptions += 1;
            st.active = next;
            self.cv.notify_all();
            let _st = self.wait_turn(st, me);
        }
    }

    // --- mutex ---

    /// Registers a mutex object for the current execution, returning
    /// its id. Object state from prior executions is lazily discarded
    /// by comparing epochs.
    pub(crate) fn register_mutex(&self, meta: &Mutex<ObjMeta>) -> usize {
        let mut st = self.lock();
        let mut m = meta.lock().unwrap_or_else(|e| e.into_inner());
        if m.epoch != st.epoch {
            m.epoch = st.epoch;
            m.id = st.mutexes.len();
            st.mutexes.push(MutexState::default());
        }
        m.id
    }

    pub(crate) fn register_condvar(&self, meta: &Mutex<ObjMeta>) -> usize {
        let mut st = self.lock();
        let mut m = meta.lock().unwrap_or_else(|e| e.into_inner());
        if m.epoch != st.epoch {
            m.epoch = st.epoch;
            m.id = st.condvars.len();
            st.condvars.push(CondvarState::default());
        }
        m.id
    }

    pub(crate) fn mutex_acquire(&self, me: usize, mid: usize) {
        self.op_point(me, format!("mutex[{mid}].lock"));
        let mut st = self.lock();
        loop {
            st = self.abort_if_tearing_down(st);
            if st.mutexes[mid].held_by.is_none() {
                st.mutexes[mid].held_by = Some(me);
                let mclock = st.mutexes[mid].clock.clone();
                st.threads[me].clock.join(&mclock);
                return;
            }
            st = self.block_current(st, me, ThreadStatus::BlockedMutex(mid));
        }
    }

    /// Releases a mutex with release semantics and wakes contenders.
    /// Not a preemption point (see module docs).
    pub(crate) fn mutex_unlock(&self, me: usize, mid: usize) {
        let mut st = self.lock();
        if st.aborting {
            // Tear-down already in progress; just drop the hold.
            st.mutexes[mid].held_by = None;
            st.wake_mutex_waiters(mid);
            return;
        }
        st.threads[me].clock.tick(me);
        st.mutexes[mid].clock = st.threads[me].clock.clone();
        st.mutexes[mid].held_by = None;
        st.wake_mutex_waiters(mid);
    }

    /// Releases a mutex during panic unwinding: no clocks, no trace, no
    /// further panics — the failure is already being reported.
    pub(crate) fn mutex_release_silent(&self, mid: usize) {
        let mut st = self.lock();
        st.mutexes[mid].held_by = None;
        st.wake_mutex_waiters(mid);
    }

    // --- condvar ---

    /// Atomically releases `mid`, registers the caller as a waiter on
    /// `cid`, and blocks; reacquires `mid` after being notified. The
    /// release + registration happen under one engine lock, so no
    /// artificial lost-wakeup window is introduced — any lost wakeup
    /// the checker reports is real.
    pub(crate) fn condvar_wait(&self, me: usize, cid: usize, mid: usize) {
        self.op_point(me, format!("condvar[{cid}].wait(mutex[{mid}])"));
        let mut st = self.lock();
        st = self.abort_if_tearing_down(st);
        st.threads[me].clock.tick(me);
        st.mutexes[mid].clock = st.threads[me].clock.clone();
        st.mutexes[mid].held_by = None;
        st.wake_mutex_waiters(mid);
        st.condvars[cid].waiters.push(me);
        let st = self.block_current(st, me, ThreadStatus::BlockedCondvar(cid));
        drop(st);
        self.mutex_acquire(me, mid);
    }

    /// Notifies waiters. A notify with no waiters is lost — precisely
    /// the semantics that let the checker surface lost-wakeup bugs as
    /// deadlocks.
    pub(crate) fn condvar_notify(&self, me: usize, cid: usize, all: bool) {
        let kind = if all { "notify_all" } else { "notify_one" };
        self.op_point(me, format!("condvar[{cid}].{kind}"));
        let mut st = self.lock();
        st = self.abort_if_tearing_down(st);
        if all {
            let waiters = std::mem::take(&mut st.condvars[cid].waiters);
            for w in waiters {
                st.threads[w].status = ThreadStatus::Runnable;
            }
        } else if !st.condvars[cid].waiters.is_empty() {
            let w = st.condvars[cid].waiters.remove(0);
            st.threads[w].status = ThreadStatus::Runnable;
        }
    }

    // --- threads ---

    /// Spawns a modeled thread running `f` on a real OS thread under
    /// engine control. The child inherits the parent's clock (the spawn
    /// happens-before everything in the child).
    pub(crate) fn thread_spawn(
        self: &Arc<Self>,
        me: usize,
        f: Box<dyn FnOnce() + Send + 'static>,
    ) -> usize {
        self.op_point(me, "thread.spawn".to_string());
        let mut st = self.lock();
        let tid = st.threads.len();
        st.threads[me].clock.tick(me);
        let clock = st.threads[me].clock.clone();
        st.threads.push(ThreadInfo {
            status: ThreadStatus::Runnable,
            clock,
        });
        let eng = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("twofd-check-{tid}"))
            .spawn(move || run_controlled(eng, tid, f))
            .expect("spawn model thread");
        st.os_handles.push(handle);
        tid
    }

    /// Joins a modeled thread: blocks until it finishes, then joins its
    /// final clock (everything in the child happens-before the join).
    pub(crate) fn thread_join(&self, me: usize, tid: usize) {
        self.op_point(me, format!("thread[{tid}].join"));
        let mut st = self.lock();
        loop {
            st = self.abort_if_tearing_down(st);
            if st.threads[tid].status == ThreadStatus::Finished {
                let child = st.threads[tid].clock.clone();
                st.threads[me].clock.join(&child);
                return;
            }
            st = self.block_current(st, me, ThreadStatus::BlockedJoin(tid));
        }
    }

    /// Normal completion of a modeled thread's closure.
    fn thread_finish(&self, me: usize) {
        let mut st = self.lock();
        st.threads[me].clock.tick(me);
        st.threads[me].status = ThreadStatus::Finished;
        for t in &mut st.threads {
            if t.status == ThreadStatus::BlockedJoin(me) {
                t.status = ThreadStatus::Runnable;
            }
        }
        if st.active == me && !st.aborting {
            if let Err(msg) = st.pick_next() {
                // Deadlock discovered as this thread exits. We are
                // outside catch_unwind here, so record without
                // panicking; blocked threads wake and unwind themselves.
                if st.failure.is_none() {
                    st.failure = Some(msg);
                }
                st.aborting = true;
            }
        }
        self.cv.notify_all();
    }

    /// Completion via `Abort` unwind: just mark finished.
    fn thread_finish_aborted(&self, me: usize) {
        let mut st = self.lock();
        st.threads[me].status = ThreadStatus::Finished;
        self.cv.notify_all();
    }

    /// Completion via a real panic (assertion failure in the test).
    fn thread_fail(&self, me: usize, msg: String) {
        let mut st = self.lock();
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.aborting = true;
        st.threads[me].status = ThreadStatus::Finished;
        self.cv.notify_all();
    }

    // --- atomics ---

    /// Registers an atomic variable for the current execution; seeds
    /// its history with the live value so atomics created outside the
    /// model (or in a prior execution) read correctly.
    pub(crate) fn register_atomic(&self, var: &Mutex<VarState>, inner: &StdAtomicU64) -> usize {
        let mut st = self.lock();
        let mut v = var.lock().unwrap_or_else(|e| e.into_inner());
        if v.epoch != st.epoch {
            v.epoch = st.epoch;
            v.id = st.next_atom;
            st.next_atom += 1;
            v.stores = vec![StoreEv {
                value: inner.load(std::sync::atomic::Ordering::SeqCst),
                tid: usize::MAX,
                tick: 0,
                msg: VClock::new(),
            }];
            v.frontier.clear();
            v.last_sc = 0;
        }
        v.id
    }

    pub(crate) fn atomic_load(
        &self,
        var: &Mutex<VarState>,
        inner: &StdAtomicU64,
        me: usize,
        order: std::sync::atomic::Ordering,
    ) -> u64 {
        use std::sync::atomic::Ordering::*;
        assert!(
            !matches!(order, Release | AcqRel),
            "there is no such thing as a release load"
        );
        let id = self.register_atomic(var, inner);
        self.op_point(me, format!("atomic[{id}].load({order:?})"));
        let mut st = self.lock();
        let mut v = var.lock().unwrap_or_else(|e| e.into_inner());
        if v.frontier.len() <= me {
            v.frontier.resize(me + 1, 0);
        }
        let reader = st.threads[me].clock.clone();
        let lo = if matches!(order, SeqCst) {
            v.frontier[me].max(v.last_sc)
        } else {
            v.frontier[me]
        };
        let candidates: Vec<usize> = (lo..v.stores.len())
            .filter(|&i| {
                // Hidden if a later store already happened-before us.
                !((i + 1)..v.stores.len()).any(|j| {
                    let s = &v.stores[j];
                    s.tick > 0 && reader.get(s.tid) >= s.tick
                })
            })
            .collect();
        debug_assert!(!candidates.is_empty(), "latest store is always visible");
        let pick = if candidates.len() > 1 {
            match st.decide(candidates.len()) {
                Ok(p) => p,
                Err(msg) => {
                    drop(v);
                    self.fail(st, msg);
                }
            }
        } else {
            0
        };
        let idx = candidates[pick];
        v.frontier[me] = idx;
        if matches!(order, Acquire | SeqCst) {
            let msg = v.stores[idx].msg.clone();
            st.threads[me].clock.join(&msg);
        }
        v.stores[idx].value
    }

    pub(crate) fn atomic_store(
        &self,
        var: &Mutex<VarState>,
        inner: &StdAtomicU64,
        me: usize,
        value: u64,
        order: std::sync::atomic::Ordering,
    ) {
        use std::sync::atomic::Ordering::*;
        assert!(
            !matches!(order, Acquire | AcqRel),
            "there is no such thing as an acquire store"
        );
        let id = self.register_atomic(var, inner);
        self.op_point(me, format!("atomic[{id}].store({value}, {order:?})"));
        let mut st = self.lock();
        let mut v = var.lock().unwrap_or_else(|e| e.into_inner());
        if v.frontier.len() <= me {
            v.frontier.resize(me + 1, 0);
        }
        let tick = st.threads[me].clock.tick(me);
        let msg = if matches!(order, Release | SeqCst) {
            st.threads[me].clock.clone()
        } else {
            VClock::new()
        };
        v.stores.push(StoreEv {
            value,
            tid: me,
            tick,
            msg,
        });
        let idx = v.stores.len() - 1;
        if matches!(order, SeqCst) {
            v.last_sc = idx;
        }
        v.frontier[me] = idx;
        // Mirror into the live atomic so epoch refreshes and post-model
        // reads see the final value.
        inner.store(value, std::sync::atomic::Ordering::SeqCst);
    }

    /// Read-modify-write: reads the latest store (atomicity), applies
    /// `f`, and if `f` returns a new value, appends a store inheriting
    /// the previous message (release sequence) joined with the thread
    /// clock when `success` is release-like. Returns the old value and
    /// whether a store happened. `failure` is the ordering applied to
    /// the read when no store happens (compare_exchange failure path).
    // One argument per fact of the operation; bundling them into a
    // struct would just rename the call sites.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn atomic_rmw(
        &self,
        var: &Mutex<VarState>,
        inner: &StdAtomicU64,
        me: usize,
        desc: &str,
        f: impl FnOnce(u64) -> Option<u64>,
        success: std::sync::atomic::Ordering,
        failure: std::sync::atomic::Ordering,
    ) -> (u64, bool) {
        use std::sync::atomic::Ordering::*;
        let id = self.register_atomic(var, inner);
        self.op_point(me, format!("atomic[{id}].{desc}"));
        let mut st = self.lock();
        let mut v = var.lock().unwrap_or_else(|e| e.into_inner());
        if v.frontier.len() <= me {
            v.frontier.resize(me + 1, 0);
        }
        let last = v.stores.len() - 1;
        let old = v.stores[last].value;
        match f(old) {
            Some(new) => {
                if matches!(success, Acquire | AcqRel | SeqCst) {
                    let msg = v.stores[last].msg.clone();
                    st.threads[me].clock.join(&msg);
                }
                let tick = st.threads[me].clock.tick(me);
                let mut msg = v.stores[last].msg.clone();
                if matches!(success, Release | AcqRel | SeqCst) {
                    msg.join(&st.threads[me].clock);
                }
                v.stores.push(StoreEv {
                    value: new,
                    tid: me,
                    tick,
                    msg,
                });
                let idx = v.stores.len() - 1;
                if matches!(success, SeqCst) {
                    v.last_sc = idx;
                }
                v.frontier[me] = idx;
                inner.store(new, std::sync::atomic::Ordering::SeqCst);
                (old, true)
            }
            None => {
                if matches!(failure, Acquire | SeqCst) {
                    let msg = v.stores[last].msg.clone();
                    st.threads[me].clock.join(&msg);
                }
                v.frontier[me] = last;
                (old, false)
            }
        }
    }

    // --- controller support ---

    fn begin_execution(&self, path: Vec<Choice>) {
        let mut st = self.lock();
        st.epoch += 1;
        st.active = 0;
        st.threads = vec![ThreadInfo {
            status: ThreadStatus::Runnable,
            clock: VClock::new(),
        }];
        st.path = path;
        st.pos = 0;
        st.preemptions = 0;
        st.ops = 0;
        st.trace.clear();
        st.failure = None;
        st.aborting = false;
        st.mutexes.clear();
        st.condvars.clear();
        st.next_atom = 0;
        debug_assert!(st.os_handles.is_empty());
    }

    fn wait_all_finished(&self) {
        let mut st = self.lock();
        while !st.all_finished() {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn drain_handles(&self) -> Vec<std::thread::JoinHandle<()>> {
        std::mem::take(&mut self.lock().os_handles)
    }

    fn take_result(&self) -> (Option<String>, Vec<Choice>, Vec<(usize, String)>) {
        let mut st = self.lock();
        (
            st.failure.take(),
            std::mem::take(&mut st.path),
            std::mem::take(&mut st.trace),
        )
    }
}

/// Registration record shared by the mutex/condvar shims: which engine
/// execution (epoch) the object was last registered in, and its id.
#[derive(Debug, Default)]
pub(crate) struct ObjMeta {
    epoch: u64,
    id: usize,
}

/// Body run by every modeled OS thread (including the root).
pub(crate) fn run_controlled(engine: Arc<Engine>, tid: usize, f: Box<dyn FnOnce() + Send>) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&engine), tid)));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
        let st = engine.lock();
        drop(engine.wait_turn(st, tid));
        f();
    }));
    CURRENT.with(|c| *c.borrow_mut() = None);
    match outcome {
        Ok(()) => engine.thread_finish(tid),
        Err(payload) => {
            if payload.is::<Abort>() {
                engine.thread_finish_aborted(tid);
            } else {
                engine.thread_fail(tid, payload_message(payload));
            }
        }
    }
}

fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Increments the decision path depth-first: bump the last
/// non-exhausted choice and truncate everything after it. Returns
/// false when the space is exhausted.
fn advance(path: &mut Vec<Choice>) -> bool {
    while let Some(last) = path.last_mut() {
        if last.picked + 1 < last.total {
            last.picked += 1;
            return true;
        }
        path.pop();
    }
    false
}

fn seed_string(path: &[Choice]) -> String {
    if path.is_empty() {
        return "-".to_string();
    }
    path.iter()
        .map(|c| c.picked.to_string())
        .collect::<Vec<_>>()
        .join(".")
}

fn parse_seed(seed: &str) -> Result<Vec<Choice>, String> {
    if seed == "-" || seed.is_empty() {
        return Ok(Vec::new());
    }
    seed.split('.')
        .map(|part| {
            part.parse::<usize>()
                .map(|picked| Choice { picked, total: 0 })
                .map_err(|_| format!("invalid schedule seed component {part:?}"))
        })
        .collect()
}

/// Summary of a completed (non-failing) check.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Executions explored.
    pub iterations: usize,
    /// True when the bounded schedule space was exhausted; false when
    /// the iteration cap stopped exploration early.
    pub complete: bool,
}

/// A failing execution: what failed, and the schedule that got there.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Panic message or engine diagnosis (deadlock, budget).
    pub message: String,
    /// Replayable schedule seed (pass to [`Builder::replay_seed`]).
    pub seed: String,
    /// 1-based index of the failing execution.
    pub iteration: usize,
    /// Operation trace of the failing execution: (thread id, op).
    pub trace: Vec<(usize, String)>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "model check failed: {}", self.message)?;
        writeln!(f, "  execution: #{}", self.iteration)?;
        writeln!(f, "  schedule seed: {}", self.seed)?;
        writeln!(f, "  trace ({} ops):", self.trace.len())?;
        for (tid, op) in &self.trace {
            writeln!(f, "    [thread {tid}] {op}")?;
        }
        Ok(())
    }
}

/// Configures and runs a bounded model check.
///
/// Defaults: preemption bound 2, 100 000 executions, 20 000 ops per
/// execution — small enough for CI, large enough to exhaust every suite
/// in this repo.
#[derive(Debug, Clone)]
pub struct Builder {
    preemption_bound: usize,
    max_iterations: usize,
    max_ops: usize,
    replay_seed: Option<String>,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            preemption_bound: 2,
            max_iterations: 100_000,
            max_ops: 20_000,
            replay_seed: None,
        }
    }
}

impl Builder {
    /// A builder with default bounds.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Maximum number of forced context switches away from a runnable
    /// thread per execution. Value-visibility choices do not count, so
    /// stale-read bugs are found even at bound 0.
    pub fn preemption_bound(mut self, bound: usize) -> Builder {
        self.preemption_bound = bound;
        self
    }

    /// Caps the number of executions explored. When hit, the check
    /// passes with [`Report::complete`] = false.
    pub fn max_iterations(mut self, cap: usize) -> Builder {
        self.max_iterations = cap;
        self
    }

    /// Caps instrumented operations per execution (livelock backstop).
    pub fn max_ops(mut self, cap: usize) -> Builder {
        self.max_ops = cap;
        self
    }

    /// Replays exactly one execution from a seed printed by a previous
    /// failure instead of exploring.
    pub fn replay_seed(mut self, seed: &str) -> Builder {
        self.replay_seed = Some(seed.to_string());
        self
    }

    /// Explores `f` under every schedule within bounds; returns the
    /// first failure (with its schedule) or a pass report.
    pub fn check_result<F>(&self, f: F) -> Result<Report, Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_panic_hook();
        let f = Arc::new(f);
        let engine = Arc::new(Engine::new(self.preemption_bound, self.max_ops));
        let replaying = self.replay_seed.is_some();
        let mut path = match &self.replay_seed {
            Some(seed) => match parse_seed(seed) {
                Ok(p) => p,
                Err(msg) => {
                    return Err(Failure {
                        message: msg,
                        seed: seed.clone(),
                        iteration: 0,
                        trace: Vec::new(),
                    })
                }
            },
            None => Vec::new(),
        };
        let mut iterations = 0;
        loop {
            if iterations >= self.max_iterations {
                return Ok(Report {
                    iterations,
                    complete: false,
                });
            }
            engine.begin_execution(std::mem::take(&mut path));
            let eng = Arc::clone(&engine);
            let fc = Arc::clone(&f);
            let root = std::thread::Builder::new()
                .name("twofd-check-0".to_string())
                .spawn(move || run_controlled(eng, 0, Box::new(move || fc())))
                .expect("spawn model root thread");
            engine.wait_all_finished();
            let _ = root.join();
            for h in engine.drain_handles() {
                let _ = h.join();
            }
            iterations += 1;
            let (failure, done_path, trace) = engine.take_result();
            if let Some(message) = failure {
                return Err(Failure {
                    message,
                    seed: seed_string(&done_path),
                    iteration: iterations,
                    trace,
                });
            }
            path = done_path;
            if replaying || !advance(&mut path) {
                return Ok(Report {
                    iterations,
                    complete: true,
                });
            }
        }
    }

    /// Like [`Builder::check_result`] but panics with the rendered
    /// failure (message, seed, trace) on the first failing schedule.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        match self.check_result(f) {
            Ok(report) => report,
            Err(failure) => panic!("{failure}"),
        }
    }
}

/// Checks `f` under every schedule within the default bounds, panicking
/// with a replayable trace on the first failure. The entry point for
/// model-check suites.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}
