//! Instrumented `std::sync::atomic` stand-ins.
//!
//! Each atomic keeps a real `std` atomic (the delegate path, and the
//! value mirror the engine reads when an execution starts) plus a
//! model-side store history. Inside a model run, loads branch over
//! every store the memory model allows them to observe — this is what
//! catches relaxed-ordering bugs without needing any preemptions.

pub use std::sync::atomic::Ordering;

use std::sync::atomic::AtomicU64 as StdAtomicU64;
use std::sync::Mutex as StdMutex;

use crate::engine::{current, VarState};

/// Instrumented `std::sync::atomic::AtomicU64` stand-in.
#[derive(Debug, Default)]
pub struct AtomicU64 {
    inner: StdAtomicU64,
    var: StdMutex<VarState>,
}

impl AtomicU64 {
    /// Creates a new atomic with the given initial value.
    pub fn new(value: u64) -> AtomicU64 {
        AtomicU64 {
            inner: StdAtomicU64::new(value),
            var: StdMutex::new(VarState::default()),
        }
    }

    /// Loads the value, observing any store the memory model allows
    /// under `order` (a branch point inside a model run).
    pub fn load(&self, order: Ordering) -> u64 {
        match current() {
            None => self.inner.load(order),
            Some((engine, me)) => engine.atomic_load(&self.var, &self.inner, me, order),
        }
    }

    /// Stores a value.
    pub fn store(&self, value: u64, order: Ordering) {
        match current() {
            None => self.inner.store(value, order),
            Some((engine, me)) => engine.atomic_store(&self.var, &self.inner, me, value, order),
        }
    }

    /// Atomically replaces the value, returning the previous one.
    pub fn swap(&self, value: u64, order: Ordering) -> u64 {
        match current() {
            None => self.inner.swap(value, order),
            Some((engine, me)) => {
                engine
                    .atomic_rmw(
                        &self.var,
                        &self.inner,
                        me,
                        &format!("swap({value}, {order:?})"),
                        |_| Some(value),
                        order,
                        order,
                    )
                    .0
            }
        }
    }

    /// Atomically adds (wrapping), returning the previous value.
    pub fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
        match current() {
            None => self.inner.fetch_add(value, order),
            Some((engine, me)) => {
                engine
                    .atomic_rmw(
                        &self.var,
                        &self.inner,
                        me,
                        &format!("fetch_add({value}, {order:?})"),
                        |old| Some(old.wrapping_add(value)),
                        order,
                        order,
                    )
                    .0
            }
        }
    }

    /// Atomically subtracts (wrapping), returning the previous value.
    pub fn fetch_sub(&self, value: u64, order: Ordering) -> u64 {
        match current() {
            None => self.inner.fetch_sub(value, order),
            Some((engine, me)) => {
                engine
                    .atomic_rmw(
                        &self.var,
                        &self.inner,
                        me,
                        &format!("fetch_sub({value}, {order:?})"),
                        |old| Some(old.wrapping_sub(value)),
                        order,
                        order,
                    )
                    .0
            }
        }
    }

    /// Atomically takes the maximum, returning the previous value.
    pub fn fetch_max(&self, value: u64, order: Ordering) -> u64 {
        match current() {
            None => self.inner.fetch_max(value, order),
            Some((engine, me)) => {
                engine
                    .atomic_rmw(
                        &self.var,
                        &self.inner,
                        me,
                        &format!("fetch_max({value}, {order:?})"),
                        |old| Some(old.max(value)),
                        order,
                        order,
                    )
                    .0
            }
        }
    }

    /// Atomically takes the minimum, returning the previous value.
    pub fn fetch_min(&self, value: u64, order: Ordering) -> u64 {
        match current() {
            None => self.inner.fetch_min(value, order),
            Some((engine, me)) => {
                engine
                    .atomic_rmw(
                        &self.var,
                        &self.inner,
                        me,
                        &format!("fetch_min({value}, {order:?})"),
                        |old| Some(old.min(value)),
                        order,
                        order,
                    )
                    .0
            }
        }
    }

    /// Compare-and-exchange; returns `Ok(previous)` on success,
    /// `Err(actual)` on mismatch.
    pub fn compare_exchange(
        &self,
        expected: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        match current() {
            None => self.inner.compare_exchange(expected, new, success, failure),
            Some((engine, me)) => {
                let (old, stored) = engine.atomic_rmw(
                    &self.var,
                    &self.inner,
                    me,
                    &format!("compare_exchange({expected}, {new}, {success:?}, {failure:?})"),
                    |old| (old == expected).then_some(new),
                    success,
                    failure,
                );
                if stored {
                    Ok(old)
                } else {
                    Err(old)
                }
            }
        }
    }

    /// Like [`AtomicU64::compare_exchange`]; the modeled version never
    /// fails spuriously.
    pub fn compare_exchange_weak(
        &self,
        expected: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        match current() {
            None => self
                .inner
                .compare_exchange_weak(expected, new, success, failure),
            Some(_) => self.compare_exchange(expected, new, success, failure),
        }
    }
}

/// Instrumented `std::sync::atomic::AtomicUsize` stand-in (backed by
/// the 64-bit model; every supported platform has `usize` ≤ 64 bits).
#[derive(Debug, Default)]
pub struct AtomicUsize {
    core: AtomicU64,
}

impl AtomicUsize {
    /// Creates a new atomic with the given initial value.
    pub fn new(value: usize) -> AtomicUsize {
        AtomicUsize {
            core: AtomicU64::new(value as u64),
        }
    }

    /// Loads the value.
    pub fn load(&self, order: Ordering) -> usize {
        self.core.load(order) as usize
    }

    /// Stores a value.
    pub fn store(&self, value: usize, order: Ordering) {
        self.core.store(value as u64, order);
    }

    /// Atomically adds (wrapping), returning the previous value.
    pub fn fetch_add(&self, value: usize, order: Ordering) -> usize {
        self.core.fetch_add(value as u64, order) as usize
    }

    /// Atomically subtracts (wrapping), returning the previous value.
    pub fn fetch_sub(&self, value: usize, order: Ordering) -> usize {
        self.core.fetch_sub(value as u64, order) as usize
    }

    /// Atomically replaces the value, returning the previous one.
    pub fn swap(&self, value: usize, order: Ordering) -> usize {
        self.core.swap(value as u64, order) as usize
    }

    /// Compare-and-exchange; returns `Ok(previous)` on success,
    /// `Err(actual)` on mismatch.
    pub fn compare_exchange(
        &self,
        expected: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        self.core
            .compare_exchange(expected as u64, new as u64, success, failure)
            .map(|v| v as usize)
            .map_err(|v| v as usize)
    }
}

/// Instrumented `std::sync::atomic::AtomicBool` stand-in.
#[derive(Debug, Default)]
pub struct AtomicBool {
    core: AtomicU64,
}

impl AtomicBool {
    /// Creates a new atomic with the given initial value.
    pub fn new(value: bool) -> AtomicBool {
        AtomicBool {
            core: AtomicU64::new(u64::from(value)),
        }
    }

    /// Loads the value.
    pub fn load(&self, order: Ordering) -> bool {
        self.core.load(order) != 0
    }

    /// Stores a value.
    pub fn store(&self, value: bool, order: Ordering) {
        self.core.store(u64::from(value), order);
    }

    /// Atomically replaces the value, returning the previous one.
    pub fn swap(&self, value: bool, order: Ordering) -> bool {
        self.core.swap(u64::from(value), order) != 0
    }
}
