//! Drop-in replacements for `std::sync` primitives, instrumented for
//! model checking.
//!
//! Outside a [`crate::model`] run every type delegates straight to its
//! `std` counterpart, so code compiled against this module (via a
//! `#[cfg(twofd_check)]` facade) behaves identically in ordinary tests.
//! Inside a model run, every lock, unlock, wait, and notify becomes an
//! engine operation point with happens-before tracking.

pub mod atomic;

use std::sync::Mutex as StdMutex;
use std::sync::{Arc, Condvar as StdCondvar, LockResult, PoisonError, TryLockError};

use crate::engine::{current, Engine, ObjMeta};

/// Instrumented `std::sync::Mutex` stand-in.
///
/// Poisoning is surfaced on the delegate path exactly like std; on the
/// modeled path a panicking thread tears the execution down, so lock
/// never reports poison there.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    meta: StdMutex<ObjMeta>,
    inner: StdMutex<T>,
}

/// Guard for [`Mutex`]; releases the model-level hold on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    std: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<(Arc<Engine>, usize, usize)>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            meta: StdMutex::new(ObjMeta::default()),
            inner: StdMutex::new(value),
        }
    }

    /// Acquires the mutex, blocking (or yielding to the model
    /// scheduler) until it is available.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match current() {
            None => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    std: Some(g),
                    model: None,
                }),
                Err(poisoned) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    std: Some(poisoned.into_inner()),
                    model: None,
                })),
            },
            Some((engine, me)) => {
                let mid = engine.register_mutex(&self.meta);
                engine.mutex_acquire(me, mid);
                // The scheduler guarantees exclusivity; the inner lock
                // is only ever contended if a prior aborted execution
                // poisoned it, which we shrug off (poisoning is not
                // modeled).
                let g = self.inner.try_lock().unwrap_or_else(|e| match e {
                    TryLockError::Poisoned(p) => p.into_inner(),
                    TryLockError::WouldBlock => {
                        unreachable!("model scheduler granted a held mutex")
                    }
                });
                Ok(MutexGuard {
                    lock: self,
                    std: Some(g),
                    model: Some((engine, me, mid)),
                })
            }
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_ref().expect("guard holds data lock")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std.as_mut().expect("guard holds data lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the data lock first so a reacquire by the next
        // scheduled thread always succeeds.
        drop(self.std.take());
        if let Some((engine, me, mid)) = self.model.take() {
            if std::thread::panicking() {
                engine.mutex_release_silent(mid);
            } else {
                engine.mutex_unlock(me, mid);
            }
        }
    }
}

/// Result of a [`Condvar::wait_timeout`]; mirrors
/// `std::sync::WaitTimeoutResult`.
///
/// On the modeled path timeouts never fire (see crate docs): a wait
/// that would only end by timeout is reported as a deadlock, because
/// production code in this repo uses timeouts defensively, never as the
/// sole wakeup path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Instrumented `std::sync::Condvar` stand-in.
#[derive(Debug, Default)]
pub struct Condvar {
    meta: StdMutex<ObjMeta>,
    inner: StdCondvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Condvar {
        Condvar {
            meta: StdMutex::new(ObjMeta::default()),
            inner: StdCondvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's mutex while parked.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match guard.model.take() {
            None => {
                let stdg = guard.std.take().expect("guard holds data lock");
                let lock = guard.lock;
                drop(guard);
                match self.inner.wait(stdg) {
                    Ok(g) => Ok(MutexGuard {
                        lock,
                        std: Some(g),
                        model: None,
                    }),
                    Err(poisoned) => Err(PoisonError::new(MutexGuard {
                        lock,
                        std: Some(poisoned.into_inner()),
                        model: None,
                    })),
                }
            }
            Some((engine, me, mid)) => {
                let cid = engine.register_condvar(&self.meta);
                // Dismantle the guard without running its Drop (both
                // options are None after the takes, so Drop would no-op
                // anyway): the engine release must be atomic with
                // waiter registration, which condvar_wait guarantees.
                drop(guard.std.take());
                let lock = guard.lock;
                drop(guard);
                engine.condvar_wait(me, cid, mid);
                // condvar_wait returns with the model-level mutex held;
                // re-take the data lock (uncontended by construction).
                let stdg = lock.inner.try_lock().unwrap_or_else(|e| match e {
                    TryLockError::Poisoned(p) => p.into_inner(),
                    TryLockError::WouldBlock => {
                        unreachable!("model scheduler granted a held mutex")
                    }
                });
                Ok(MutexGuard {
                    lock,
                    std: Some(stdg),
                    model: Some((engine, me, mid)),
                })
            }
        }
    }

    /// Like [`Condvar::wait`] with an upper bound on the park time. On
    /// the modeled path the timeout is ignored and this is a plain
    /// wait that reports `timed_out() == false`.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        if guard.model.is_some() {
            return self
                .wait(guard)
                .map(|g| (g, WaitTimeoutResult(false)))
                .map_err(|p| {
                    let g = p.into_inner();
                    PoisonError::new((g, WaitTimeoutResult(false)))
                });
        }
        let mut guard = guard;
        let stdg = guard.std.take().expect("guard holds data lock");
        let lock = guard.lock;
        drop(guard);
        match self.inner.wait_timeout(stdg, dur) {
            Ok((g, t)) => Ok((
                MutexGuard {
                    lock,
                    std: Some(g),
                    model: None,
                },
                WaitTimeoutResult(t.timed_out()),
            )),
            Err(poisoned) => {
                let (g, t) = poisoned.into_inner();
                Err(PoisonError::new((
                    MutexGuard {
                        lock,
                        std: Some(g),
                        model: None,
                    },
                    WaitTimeoutResult(t.timed_out()),
                )))
            }
        }
    }

    /// Wakes one waiter (the longest-waiting one on the modeled path).
    pub fn notify_one(&self) {
        match current() {
            None => self.inner.notify_one(),
            Some((engine, me)) => {
                let cid = engine.register_condvar(&self.meta);
                engine.condvar_notify(me, cid, false);
            }
        }
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        match current() {
            None => self.inner.notify_all(),
            Some((engine, me)) => {
                let cid = engine.register_condvar(&self.meta);
                engine.condvar_notify(me, cid, true);
            }
        }
    }
}
