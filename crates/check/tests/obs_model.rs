//! Model-check suite for the twofd-obs metric core: histogram snapshot
//! consistency (the count-first protocol), counter monotonicity, and
//! registry resolution under concurrency.
//!
//! Compiled only with `RUSTFLAGS="--cfg twofd_check"`.
//!
//! The `histogram_snapshot_*` tests double as the CI sensitivity check:
//! with `TWOFD_CHECK_MUTATE=1` the histogram's count increment is
//! deliberately weakened to `Relaxed` (see `count_add_ordering` in
//! `crates/obs/src/metric.rs`), and the suite asserts the checker
//! *catches* the resulting snapshot inversion — proving a pass on the
//! real orderings is meaningful.

#![cfg(twofd_check)]

use std::sync::Arc;

use twofd_check::{model, thread, Builder};
use twofd_obs::metric::Histogram;
use twofd_obs::{Counter, Registry};

fn mutate_enabled() -> bool {
    std::env::var_os("TWOFD_CHECK_MUTATE").is_some_and(|v| v == "1")
}

/// A snapshot that reads `count()` first can never see more
/// observations counted than are visible in the buckets:
/// `sum(bucket_counts) >= count` under every schedule. With the
/// mutation knob set, the Release publication is gone and the checker
/// must find the inversion.
#[test]
fn histogram_snapshot_count_first_is_consistent() {
    let run = || {
        Builder::new().preemption_bound(2).check_result(|| {
            let h = Histogram::new();
            let h2 = h.clone();
            let writer = thread::spawn(move || {
                h2.observe_ns(2_000); // one observation, one bucket
            });
            let c = h.count();
            let visible: u64 = h.bucket_counts().iter().sum();
            assert!(
                visible >= c,
                "snapshot inversion: count {c} ahead of buckets {visible}"
            );
            writer.join().unwrap();
        })
    };
    if mutate_enabled() {
        let failure = run().expect_err(
            "TWOFD_CHECK_MUTATE=1: the weakened Relaxed count increment \
             must produce an observable snapshot inversion",
        );
        assert!(failure.message.contains("snapshot inversion"));
        // Surface the failing schedule in the test output: this is the
        // artifact CI archives to prove the checker has teeth.
        println!("sensitivity check caught the seeded mutation:\n{failure}");
    } else {
        let report = run().expect("count-first snapshots are consistent");
        assert!(report.complete);
    }
}

/// `count()` is monotone across consecutive snapshots regardless of a
/// concurrent writer.
#[test]
fn histogram_count_is_monotone_across_snapshots() {
    let report = model(|| {
        let h = Histogram::new();
        let h2 = h.clone();
        let writer = thread::spawn(move || h2.observe_ns(5_000));
        let first = h.count();
        let second = h.count();
        assert!(second >= first, "count went backwards: {first} -> {second}");
        writer.join().unwrap();
    });
    assert!(report.complete);
}

/// Counter handles cloned across threads converge: concurrent `inc`
/// and `add` never lose an update (fetch_add is atomic under any
/// ordering), and a reader that saw `b` first and `a` second never
/// observes `b > a` when every bump of `b` is preceded by one of `a`
/// (the Release/Acquire promotion on Counter).
#[test]
fn counter_pairs_are_observed_in_write_order() {
    let report = model(|| {
        let a = Counter::new();
        let b = Counter::new();
        let (a2, b2) = (a.clone(), b.clone());
        let writer = thread::spawn(move || {
            a2.inc();
            b2.inc();
        });
        let b_seen = b.get();
        let a_seen = a.get();
        assert!(
            b_seen <= a_seen,
            "b={b_seen} observed ahead of a={a_seen} despite write order"
        );
        writer.join().unwrap();
        assert_eq!(a.get(), 1);
        assert_eq!(b.get(), 1);
    });
    assert!(report.complete);
}

/// Two threads resolving the same registry child concurrently get the
/// same cell (no lost registration, no deadlock on the registry lock).
#[test]
fn registry_resolution_is_race_free() {
    let report = Builder::new().max_iterations(50_000).check(|| {
        let r = Registry::new();
        let r2 = r.clone();
        let t = thread::spawn(move || {
            r2.counter("twofd_model_total", "model").inc();
        });
        r.counter("twofd_model_total", "model").inc();
        t.join().unwrap();
        assert_eq!(r.counter("twofd_model_total", "model").get(), 2);
    });
    assert!(report.iterations > 0);
}
