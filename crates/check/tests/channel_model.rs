//! Model-check suite for the vendored crossbeam channel: the wake
//! elision on the send path, `force_send_many`'s drop-oldest eviction,
//! and the shard runtime's counter-reconciliation protocol, explored
//! under every schedule within bounds.
//!
//! Compiled only with `RUSTFLAGS="--cfg twofd_check"` — without the cfg
//! the channel's sync facade points at real `std` primitives, which
//! would hang the model scheduler.

#![cfg(twofd_check)]

use std::sync::Arc;

use crossbeam::channel;
use twofd_check::sync::atomic::{AtomicU64, Ordering};
use twofd_check::{model, thread, Builder};

/// No lost wakeup across the send/park race: the sender elides the
/// condvar notification when `recv_waiting == 0`, so a stale decision
/// there would leave the receiver parked forever — which the checker
/// would report as a deadlock.
#[test]
fn send_never_loses_a_parked_receiver() {
    let report = model(|| {
        let (tx, rx) = channel::bounded::<u32>(1);
        let t = thread::spawn(move || rx.recv().expect("sender alive"));
        tx.send(7).expect("receiver alive");
        assert_eq!(t.join().unwrap(), 7);
    });
    assert!(report.complete, "schedule space should be exhausted");
}

/// The symmetric race: a sender parked on a full channel must be woken
/// by the receiver's dequeue (wake elision on `send_waiting`).
#[test]
fn recv_never_loses_a_parked_sender() {
    let report = model(|| {
        let (tx, rx) = channel::bounded::<u32>(1);
        tx.send(1).expect("receiver alive");
        let t = thread::spawn(move || {
            // Parks while the queue is at capacity.
            tx.send(2).expect("receiver alive");
        });
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        t.join().unwrap();
    });
    assert!(report.complete);
}

/// Same invariant for the batch enqueue: `force_send_many` wakes a
/// parked receiver (at most one notification per batch — but never
/// zero when someone is parked).
#[test]
fn force_send_many_wakes_a_parked_receiver() {
    let report = model(|| {
        let (tx, rx) = channel::bounded::<u32>(2);
        let t = thread::spawn(move || rx.recv().expect("sender alive"));
        let evicted = tx.force_send_many(&[1, 2]).expect("receiver alive");
        assert_eq!(evicted, 0, "capacity 2 holds a 2-element batch");
        let got = t.join().unwrap();
        assert_eq!(got, 1, "FIFO: the parked receiver gets the oldest");
    });
    assert!(report.complete);
}

/// The shard reconciliation contract end to end: `received` is bumped
/// before the enqueue, eviction bumps `dropped`, the worker bumps
/// `applied` per dequeued job, and once the worker drains,
/// `received == applied + dropped` exactly — under every schedule,
/// including the ones where `force_send_many` evicts.
#[test]
fn overflow_reconciles_received_applied_dropped() {
    let report = model(|| {
        let received = Arc::new(AtomicU64::new(0));
        let applied = Arc::new(AtomicU64::new(0));
        let dropped = Arc::new(AtomicU64::new(0));
        let (tx, rx) = channel::bounded::<u32>(1);

        let a2 = Arc::clone(&applied);
        let worker = thread::spawn(move || {
            // Drain until every sender is gone, applying each job.
            while rx.recv().is_ok() {
                a2.fetch_add(1, Ordering::Release);
            }
        });

        // Ingest a 2-element batch into capacity 1: at least one job is
        // evicted unless the worker dequeues in between.
        received.fetch_add(2, Ordering::Release);
        let evicted = tx.force_send_many(&[1, 2]).expect("worker alive");
        dropped.fetch_add(evicted as u64, Ordering::Release);
        drop(tx); // disconnect so the worker's recv loop ends
        worker.join().unwrap();

        let r = received.load(Ordering::Acquire);
        let a = applied.load(Ordering::Acquire);
        let d = dropped.load(Ordering::Acquire);
        assert_eq!(r, a + d, "received {r} != applied {a} + dropped {d}");
    });
    assert!(report.complete);
}

/// Mid-flight, a concurrent observer that reads `applied` and `dropped`
/// first and `received` *last* must never see `applied + dropped`
/// ahead of `received`: the ingester bumps `received` (Release) before
/// the job can possibly be applied or dropped, and the Acquire reads
/// preserve that order. This is exactly the window `ShardRuntime::flush`
/// and the Prometheus scrape read.
#[test]
fn observer_never_sees_counters_ahead_of_received() {
    let report = Builder::new()
        .preemption_bound(2)
        .max_iterations(50_000)
        .check(|| {
            let received = Arc::new(AtomicU64::new(0));
            let applied = Arc::new(AtomicU64::new(0));
            let dropped = Arc::new(AtomicU64::new(0));
            let (tx, rx) = channel::bounded::<u32>(1);

            let a2 = Arc::clone(&applied);
            let worker = thread::spawn(move || {
                while rx.recv().is_ok() {
                    a2.fetch_add(1, Ordering::Release);
                }
            });

            let (r3, a3, d3) = (
                Arc::clone(&received),
                Arc::clone(&applied),
                Arc::clone(&dropped),
            );
            let observer = thread::spawn(move || {
                let a = a3.load(Ordering::Acquire);
                let d = d3.load(Ordering::Acquire);
                let r = r3.load(Ordering::Acquire);
                assert!(
                    a + d <= r,
                    "observed applied {a} + dropped {d} > received {r}"
                );
            });

            received.fetch_add(2, Ordering::Release);
            let evicted = tx.force_send_many(&[1, 2]).expect("worker alive");
            dropped.fetch_add(evicted as u64, Ordering::Release);
            drop(tx);
            worker.join().unwrap();
            observer.join().unwrap();
        });
    // Three threads: the preemption/iteration bounds may stop short of
    // exhaustion; the suite still covers every schedule within them.
    assert!(report.iterations > 0);
}
