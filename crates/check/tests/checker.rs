//! Self-tests for the model checker: it must catch known concurrency
//! bugs (sensitivity) and pass known-correct protocols (soundness of
//! the pass verdict), deterministically and replayably.
//!
//! These run under plain `cargo test` — the `twofd_check` cfg only
//! gates the facades in other crates, never the checker itself.

use std::sync::Arc;

use twofd_check::sync::atomic::{AtomicU64, Ordering};
use twofd_check::sync::{Condvar, Mutex};
use twofd_check::{model, thread, Builder, Failure, Report};

/// Classic message passing: writer publishes data then raises a flag;
/// reader checks the flag then reads the data.
fn message_passing(store_order: Ordering, load_order: Ordering) -> Result<Report, Failure> {
    message_passing_with(Builder::new(), store_order, load_order)
}

fn message_passing_with(
    builder: Builder,
    store_order: Ordering,
    load_order: Ordering,
) -> Result<Report, Failure> {
    builder.check_result(move || {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, store_order);
        });
        if flag.load(load_order) == 1 {
            assert_eq!(
                data.load(Ordering::Relaxed),
                42,
                "stale data behind the flag"
            );
        }
        t.join().unwrap();
    })
}

#[test]
fn relaxed_message_passing_bug_is_caught() {
    let failure = message_passing(Ordering::Relaxed, Ordering::Relaxed)
        .expect_err("relaxed message passing must expose a stale read");
    assert!(
        failure.message.contains("stale data"),
        "unexpected failure: {failure}"
    );
    assert!(!failure.trace.is_empty(), "failure must carry a trace");
}

#[test]
fn release_acquire_message_passing_passes() {
    let report = message_passing(Ordering::Release, Ordering::Acquire)
        .expect("release/acquire message passing is correct");
    assert!(report.complete, "schedule space should be exhausted");
}

/// The shard-counter invariant in miniature: `received` is bumped
/// before `applied`, so an observer reading `applied` first must see
/// `received >= applied`.
fn counter_pair(order_add: Ordering, order_read: Ordering) -> Result<Report, Failure> {
    Builder::new().check_result(move || {
        let received = Arc::new(AtomicU64::new(0));
        let applied = Arc::new(AtomicU64::new(0));
        let (r2, a2) = (Arc::clone(&received), Arc::clone(&applied));
        let t = thread::spawn(move || {
            r2.fetch_add(1, order_add);
            a2.fetch_add(1, order_add);
        });
        let a = applied.load(order_read);
        let r = received.load(order_read);
        assert!(r >= a, "observed applied={a} > received={r}");
        t.join().unwrap();
    })
}

#[test]
fn relaxed_counter_pair_inversion_is_caught() {
    let failure = counter_pair(Ordering::Relaxed, Ordering::Relaxed)
        .expect_err("relaxed counters can be observed out of order");
    assert!(failure.message.contains("observed applied"));
}

#[test]
fn release_acquire_counter_pair_passes() {
    let report = counter_pair(Ordering::Release, Ordering::Acquire)
        .expect("release/acquire counters are observed in order");
    assert!(report.complete);
}

#[test]
fn lost_update_from_nonatomic_increment_is_caught() {
    let result = Builder::new().check_result(|| {
        let c = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c2 = Arc::clone(&c);
                thread::spawn(move || {
                    let v = c2.load(Ordering::Relaxed);
                    c2.store(v + 1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::Relaxed), 2, "an increment was lost");
    });
    let failure = result.expect_err("load+store increments race");
    assert!(failure.message.contains("increment was lost"));
}

#[test]
fn mutex_protected_increments_pass() {
    let report = model(|| {
        let c = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c2 = Arc::clone(&c);
                thread::spawn(move || {
                    *c2.lock().unwrap() += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*c.lock().unwrap(), 2);
    });
    assert!(report.complete);
}

#[test]
fn unconditional_wait_racing_a_notify_is_caught_as_deadlock() {
    let result = Builder::new().check_result(|| {
        let m = Arc::new(Mutex::new(()));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let t = thread::spawn(move || {
            // Bug: waits without a predicate, so a notify delivered
            // before the wait is lost and the thread parks forever.
            let g = m2.lock().unwrap();
            drop(cv2.wait(g).unwrap());
        });
        cv.notify_one();
        t.join().unwrap();
    });
    let failure = result.expect_err("notify-before-wait loses the wakeup");
    assert!(
        failure.message.contains("deadlock"),
        "expected a deadlock diagnosis, got: {}",
        failure.message
    );
}

#[test]
fn predicate_guarded_wait_passes() {
    let report = model(|| {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let t = thread::spawn(move || {
            let mut g = m2.lock().unwrap();
            while !*g {
                g = cv2.wait(g).unwrap();
            }
        });
        *m.lock().unwrap() = true;
        cv.notify_one();
        t.join().unwrap();
    });
    assert!(report.complete);
}

#[test]
fn join_establishes_happens_before() {
    model(|| {
        let d = Arc::new(AtomicU64::new(0));
        let d2 = Arc::clone(&d);
        let t = thread::spawn(move || d2.store(7, Ordering::Relaxed));
        t.join().unwrap();
        // Even a relaxed load must see the child's store through the
        // join edge; the initial value is no longer observable.
        assert_eq!(d.load(Ordering::Relaxed), 7);
    });
}

#[test]
fn spawn_establishes_happens_before() {
    model(|| {
        let d = Arc::new(AtomicU64::new(0));
        d.store(9, Ordering::Relaxed);
        let d2 = Arc::clone(&d);
        let t = thread::spawn(move || {
            assert_eq!(d2.load(Ordering::Relaxed), 9);
        });
        t.join().unwrap();
    });
}

#[test]
fn failing_schedule_replays_from_seed() {
    let failure = message_passing(Ordering::Relaxed, Ordering::Relaxed)
        .expect_err("relaxed message passing must fail");
    let replayed = message_passing_with(
        Builder::new().replay_seed(&failure.seed),
        Ordering::Relaxed,
        Ordering::Relaxed,
    )
    .expect_err("replaying the failing seed must fail again");
    assert_eq!(replayed.message, failure.message);
}

#[test]
fn iteration_cap_reports_incomplete() {
    let report = Builder::new()
        .max_iterations(1)
        .check_result(|| {
            let a = Arc::new(AtomicU64::new(0));
            let a2 = Arc::clone(&a);
            let t = thread::spawn(move || a2.store(1, Ordering::Relaxed));
            let _ = a.load(Ordering::Relaxed);
            t.join().unwrap();
        })
        .expect("benign program");
    assert_eq!(report.iterations, 1);
    assert!(
        !report.complete,
        "branching program cannot finish in one execution"
    );
}
