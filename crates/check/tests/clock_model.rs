//! Model-check suite for `twofd_net::clock::ManualClock`: concurrent
//! `advance_to` against readers after the SeqCst → AcqRel/Acquire
//! demotion.
//!
//! Compiled only with `RUSTFLAGS="--cfg twofd_check"` — the cfg swaps
//! the clock's `AtomicU64` for the instrumented shim, so loads here
//! branch over every store the memory model allows.

#![cfg(twofd_check)]

use std::sync::Arc;

use twofd_check::sync::atomic::{AtomicU64, Ordering};
use twofd_check::{model, thread, Builder};
use twofd_net::clock::ManualClock;
use twofd_sim::time::Nanos;

/// Two threads racing `advance_to` with different targets: every reader
/// observes a monotone axis, and once both advances are ordered (join),
/// the clock reads the maximum.
#[test]
fn concurrent_advances_converge_to_the_max() {
    let report = model(|| {
        let clock = Arc::new(ManualClock::new());
        let (c1, c2) = (Arc::clone(&clock), Arc::clone(&clock));
        let t1 = thread::spawn(move || c1.advance_to(Nanos(100)));
        let t2 = thread::spawn(move || c2.advance_to(Nanos(60)));
        let first = clock.now();
        let second = clock.now();
        assert!(
            second >= first,
            "clock went backwards: {first:?} -> {second:?}"
        );
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(clock.now(), Nanos(100), "joined advances must settle");
    });
    assert!(report.complete);
}

/// A backwards `advance_to` is a no-op under every interleaving: a
/// reader can never observe the clock dip below a previously published
/// instant.
#[test]
fn backwards_advance_never_rewinds_a_reader() {
    let report = model(|| {
        let clock = Arc::new(ManualClock::new());
        clock.advance_to(Nanos(500));
        let c2 = Arc::clone(&clock);
        let rewinder = thread::spawn(move || c2.advance_to(Nanos(100)));
        assert_eq!(clock.now(), Nanos(500));
        rewinder.join().unwrap();
        assert_eq!(clock.now(), Nanos(500));
    });
    assert!(report.complete);
}

/// The deterministic drivers' publication contract: everything written
/// *before* `advance_to(T)` is visible to a reader that observes the
/// clock at `T`. The payload uses Relaxed accesses on purpose — only
/// the clock's own Release/Acquire pair may order it, so demoting the
/// clock to Relaxed would make the checker find a schedule where the
/// reader sees `T` with a stale payload.
#[test]
fn advance_publishes_prior_writes_to_observers() {
    let run = || {
        Builder::new().preemption_bound(2).check_result(|| {
            let clock = Arc::new(ManualClock::new());
            let payload = Arc::new(AtomicU64::new(0));
            let (c2, p2) = (Arc::clone(&clock), Arc::clone(&payload));
            let writer = thread::spawn(move || {
                // ordering: Relaxed — ordered solely by the clock's
                // Release on `advance_to`, which is the property under
                // test.
                p2.store(7, Ordering::Relaxed);
                c2.advance_to(Nanos(100));
            });
            if clock.now() >= Nanos(100) {
                // ordering: Relaxed — see the store site.
                let seen = payload.load(Ordering::Relaxed);
                assert_eq!(
                    seen, 7,
                    "observed the advanced clock but not the write before it"
                );
            }
            writer.join().unwrap();
        })
    };
    let report = run().expect("advance_to publishes prior writes");
    assert!(report.complete);
}
