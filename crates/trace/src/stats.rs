//! Summary statistics over traces.
//!
//! [`TraceStats`] condenses a trace into the quantities the paper's
//! configuration machinery needs — loss probability `pL` and delay
//! variance `V(D)` (Section V-A.1) — plus descriptive statistics used by
//! the experiment reports (delay percentiles, inter-arrival behaviour).

use crate::record::Trace;
use serde::{Deserialize, Serialize};
use twofd_sim::time::Span;

/// Descriptive statistics of one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Heartbeats sent.
    pub sent: u64,
    /// Heartbeats delivered.
    pub received: u64,
    /// Estimated loss probability `pL`.
    pub loss_rate: f64,
    /// Mean one-way delay in seconds.
    pub delay_mean: f64,
    /// Delay variance `V(D)` in seconds².
    pub delay_var: f64,
    /// Smallest observed delay in seconds.
    pub delay_min: f64,
    /// Largest observed delay in seconds.
    pub delay_max: f64,
    /// Delay percentiles `(p50, p90, p99, p999)` in seconds.
    pub delay_percentiles: (f64, f64, f64, f64),
    /// Mean inter-arrival time in seconds (arrival-ordered).
    pub interarrival_mean: f64,
    /// Largest gap between consecutive arrivals, in seconds.
    pub interarrival_max: f64,
}

impl TraceStats {
    /// Computes statistics for `trace`. Delay statistics are zero if no
    /// heartbeat was delivered.
    pub fn compute(trace: &Trace) -> TraceStats {
        let sent = trace.sent() as u64;
        let received = trace.received() as u64;
        let loss_rate = trace.loss_rate();

        let mut delays: Vec<f64> = trace
            .records
            .iter()
            .filter_map(|r| r.delay())
            .map(Span::as_secs_f64)
            .collect();
        delays.sort_by(|a, b| a.partial_cmp(b).unwrap());

        let (delay_mean, delay_var) = mean_var(&delays);
        let pct = |p: f64| percentile(&delays, p);

        let arrivals = trace.arrivals();
        let gaps: Vec<f64> = arrivals
            .windows(2)
            .map(|w| (w[1].at - w[0].at).as_secs_f64())
            .collect();
        let interarrival_mean = if gaps.is_empty() {
            0.0
        } else {
            gaps.iter().sum::<f64>() / gaps.len() as f64
        };
        let interarrival_max = gaps.iter().copied().fold(0.0, f64::max);

        TraceStats {
            sent,
            received,
            loss_rate,
            delay_mean,
            delay_var,
            delay_min: delays.first().copied().unwrap_or(0.0),
            delay_max: delays.last().copied().unwrap_or(0.0),
            delay_percentiles: (pct(0.50), pct(0.90), pct(0.99), pct(0.999)),
            interarrival_mean,
            interarrival_max,
        }
    }

    /// Delay standard deviation in seconds.
    pub fn delay_std(&self) -> f64 {
        self.delay_var.sqrt()
    }
}

/// Sample mean and (unbiased) variance; `(0, 0)` for fewer than one / two
/// samples respectively.
fn mean_var(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var)
}

/// Nearest-rank percentile of a **sorted** slice; 0 when empty.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    debug_assert!((0.0..=1.0).contains(&p));
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::HeartbeatRecord;
    use twofd_sim::time::Nanos;

    fn rec(seq: u64, send_ms: u64, arrival_ms: Option<u64>) -> HeartbeatRecord {
        HeartbeatRecord {
            seq,
            send: Nanos::from_millis(send_ms),
            arrival: arrival_ms.map(Nanos::from_millis),
        }
    }

    #[test]
    fn basic_counts() {
        let t = Trace::new(
            "t",
            Span::from_millis(100),
            vec![
                rec(1, 100, Some(110)),
                rec(2, 200, None),
                rec(3, 300, Some(330)),
            ],
        );
        let s = TraceStats::compute(&t);
        assert_eq!(s.sent, 3);
        assert_eq!(s.received, 2);
        assert!((s.loss_rate - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn delay_moments() {
        let t = Trace::new(
            "t",
            Span::from_millis(100),
            vec![rec(1, 100, Some(110)), rec(2, 200, Some(230))],
        );
        let s = TraceStats::compute(&t);
        // Delays: 10 ms and 30 ms.
        assert!((s.delay_mean - 0.020).abs() < 1e-12);
        assert!((s.delay_var - 0.0002).abs() < 1e-9); // ((0.01)^2 + (0.01)^2)/1
        assert!((s.delay_min - 0.010).abs() < 1e-12);
        assert!((s.delay_max - 0.030).abs() < 1e-12);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&sorted, 0.50), 50.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&sorted, 1.0), 100.0);
        assert_eq!(percentile(&sorted, 0.001), 1.0);
    }

    #[test]
    fn interarrival_gap_tracking() {
        let t = Trace::new(
            "t",
            Span::from_millis(100),
            vec![
                rec(1, 100, Some(110)),
                rec(2, 200, None), // lost → creates a 200 ms gap
                rec(3, 300, Some(310)),
            ],
        );
        let s = TraceStats::compute(&t);
        assert!((s.interarrival_max - 0.200).abs() < 1e-12);
        assert!((s.interarrival_mean - 0.200).abs() < 1e-12);
    }

    #[test]
    fn all_lost_trace_has_zero_delay_stats() {
        let t = Trace::new(
            "t",
            Span::from_millis(100),
            vec![rec(1, 100, None), rec(2, 200, None)],
        );
        let s = TraceStats::compute(&t);
        assert_eq!(s.received, 0);
        assert_eq!(s.delay_mean, 0.0);
        assert_eq!(s.delay_var, 0.0);
        assert_eq!(s.loss_rate, 1.0);
    }

    #[test]
    fn single_delivery_has_zero_variance() {
        let t = Trace::new("t", Span::from_millis(100), vec![rec(1, 100, Some(150))]);
        let s = TraceStats::compute(&t);
        assert!((s.delay_mean - 0.05).abs() < 1e-12);
        assert_eq!(s.delay_var, 0.0);
    }
}
