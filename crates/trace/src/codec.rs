//! Trace serialization.
//!
//! Two formats, both self-contained and dependency-light:
//!
//! * **Binary** (`.twtr`) — a compact little-endian layout via the
//!   `bytes` crate. Arrival times are stored as deltas from the send
//!   time; lost heartbeats use a sentinel. This is the format the bench
//!   harnesses cache generated traces in.
//! * **CSV** — `seq,send_nanos,arrival_nanos` rows with an empty third
//!   field for lost heartbeats, for inspection and plotting with external
//!   tools.
//!
//! Both round-trip exactly (the unit tests and the workspace proptest
//! suite verify bit-for-bit equality).

use crate::record::{HeartbeatRecord, Trace};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::io::{self, Read, Write};
use twofd_sim::time::{Nanos, Span};

/// Magic bytes opening every binary trace file.
const MAGIC: &[u8; 4] = b"2WTR";
/// Current binary format version.
const VERSION: u16 = 1;
/// Sentinel delta marking a lost heartbeat.
const LOST: u64 = u64::MAX;

/// Errors from decoding a trace.
#[derive(Debug)]
pub enum CodecError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input is not a trace file or is structurally invalid.
    Malformed(String),
    /// The file uses an unsupported format version.
    UnsupportedVersion(u16),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "i/o error: {e}"),
            CodecError::Malformed(m) => write!(f, "malformed trace: {m}"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported trace version {v}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<io::Error> for CodecError {
    fn from(e: io::Error) -> Self {
        CodecError::Io(e)
    }
}

/// Encodes a trace into the binary format.
pub fn encode_binary(trace: &Trace) -> Bytes {
    let name = trace.name.as_bytes();
    let mut buf = BytesMut::with_capacity(4 + 2 + 4 + name.len() + 8 + 8 + trace.sent() * 24);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(name.len() as u32);
    buf.put_slice(name);
    buf.put_u64_le(trace.interval.0);
    buf.put_u64_le(trace.sent() as u64);
    for r in &trace.records {
        buf.put_u64_le(r.seq);
        buf.put_u64_le(r.send.0);
        match r.arrival {
            // Delta keeps numbers small; LOST is the drop sentinel.
            // Arrival can precede send only through clock skew, which the
            // simulated traces never produce, so the delta is uniquely
            // decodable; a real-world extension would add a signed delta.
            Some(a) => buf.put_u64_le(a.0 - r.send.0),
            None => buf.put_u64_le(LOST),
        }
    }
    buf.freeze()
}

/// Decodes a binary trace.
pub fn decode_binary(mut data: &[u8]) -> Result<Trace, CodecError> {
    fn need(data: &[u8], n: usize, what: &str) -> Result<(), CodecError> {
        if data.remaining() < n {
            Err(CodecError::Malformed(format!("truncated {what}")))
        } else {
            Ok(())
        }
    }
    need(data, 4 + 2 + 4, "header")?;
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CodecError::Malformed("bad magic".into()));
    }
    let version = data.get_u16_le();
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let name_len = data.get_u32_le() as usize;
    need(data, name_len, "name")?;
    let name = String::from_utf8(data[..name_len].to_vec())
        .map_err(|_| CodecError::Malformed("name is not UTF-8".into()))?;
    data.advance(name_len);
    need(data, 16, "interval/count")?;
    let interval = Span(data.get_u64_le());
    let count = data.get_u64_le() as usize;
    need(data, count * 24, "records")?;
    let mut records = Vec::with_capacity(count);
    let mut prev_seq = 0u64;
    for _ in 0..count {
        let seq = data.get_u64_le();
        let send = Nanos(data.get_u64_le());
        let delta = data.get_u64_le();
        if seq <= prev_seq {
            return Err(CodecError::Malformed(format!(
                "non-increasing sequence number {seq}"
            )));
        }
        prev_seq = seq;
        let arrival = if delta == LOST {
            None
        } else {
            Some(Nanos(send.0.checked_add(delta).ok_or_else(|| {
                CodecError::Malformed("arrival overflow".into())
            })?))
        };
        records.push(HeartbeatRecord { seq, send, arrival });
    }
    Ok(Trace {
        name,
        interval,
        records,
    })
}

/// Writes a binary trace to a writer.
pub fn write_binary<W: Write>(trace: &Trace, mut w: W) -> Result<(), CodecError> {
    w.write_all(&encode_binary(trace))?;
    Ok(())
}

/// Reads a binary trace from a reader.
pub fn read_binary<R: Read>(mut r: R) -> Result<Trace, CodecError> {
    let mut data = Vec::new();
    r.read_to_end(&mut data)?;
    decode_binary(&data)
}

/// Encodes a trace as CSV (`# name=…,interval_nanos=…` header comment,
/// then `seq,send_nanos,arrival_nanos` rows; empty arrival = lost).
pub fn encode_csv(trace: &Trace) -> String {
    let mut out = String::with_capacity(32 + trace.sent() * 24);
    out.push_str(&format!(
        "# name={},interval_nanos={}\n",
        trace.name, trace.interval.0
    ));
    out.push_str("seq,send_nanos,arrival_nanos\n");
    for r in &trace.records {
        match r.arrival {
            Some(a) => out.push_str(&format!("{},{},{}\n", r.seq, r.send.0, a.0)),
            None => out.push_str(&format!("{},{},\n", r.seq, r.send.0)),
        }
    }
    out
}

/// Decodes a CSV trace produced by [`encode_csv`].
pub fn decode_csv(text: &str) -> Result<Trace, CodecError> {
    let mut name = String::from("csv-trace");
    let mut interval = Span::ZERO;
    let mut records = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(meta) = line.strip_prefix('#') {
            for field in meta.split(',') {
                let field = field.trim();
                if let Some(v) = field.strip_prefix("name=") {
                    name = v.to_string();
                } else if let Some(v) = field.strip_prefix("interval_nanos=") {
                    interval = Span(v.parse().map_err(|_| {
                        CodecError::Malformed(format!("bad interval on line {}", lineno + 1))
                    })?);
                }
            }
            continue;
        }
        if line.starts_with("seq,") {
            continue; // column header
        }
        let mut cols = line.split(',');
        let bad = |what: &str| CodecError::Malformed(format!("{what} on line {}", lineno + 1));
        let seq: u64 = cols
            .next()
            .ok_or_else(|| bad("missing seq"))?
            .parse()
            .map_err(|_| bad("bad seq"))?;
        let send: u64 = cols
            .next()
            .ok_or_else(|| bad("missing send"))?
            .parse()
            .map_err(|_| bad("bad send"))?;
        let arrival_field = cols.next().ok_or_else(|| bad("missing arrival"))?;
        let arrival = if arrival_field.is_empty() {
            None
        } else {
            Some(Nanos(
                arrival_field.parse().map_err(|_| bad("bad arrival"))?,
            ))
        };
        records.push(HeartbeatRecord {
            seq,
            send: Nanos(send),
            arrival,
        });
    }
    if records.windows(2).any(|w| w[0].seq >= w[1].seq) {
        return Err(CodecError::Malformed(
            "records not in increasing sequence order".into(),
        ));
    }
    Ok(Trace {
        name,
        interval,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::new(
            "sample",
            Span::from_millis(100),
            vec![
                HeartbeatRecord {
                    seq: 1,
                    send: Nanos::from_millis(100),
                    arrival: Some(Nanos::from_millis(112)),
                },
                HeartbeatRecord {
                    seq: 2,
                    send: Nanos::from_millis(200),
                    arrival: None,
                },
                HeartbeatRecord {
                    seq: 5,
                    send: Nanos::from_millis(500),
                    arrival: Some(Nanos::from_millis(640)),
                },
            ],
        )
    }

    #[test]
    fn binary_round_trip() {
        let t = sample();
        let decoded = decode_binary(&encode_binary(&t)).unwrap();
        assert_eq!(t, decoded);
    }

    #[test]
    fn binary_round_trip_empty() {
        let t = Trace::new("empty", Span::from_millis(20), vec![]);
        assert_eq!(decode_binary(&encode_binary(&t)).unwrap(), t);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let mut data = encode_binary(&sample()).to_vec();
        data[0] = b'X';
        assert!(matches!(
            decode_binary(&data),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn binary_rejects_future_version() {
        let mut data = encode_binary(&sample()).to_vec();
        data[4] = 0xFF;
        assert!(matches!(
            decode_binary(&data),
            Err(CodecError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn binary_rejects_truncation() {
        let data = encode_binary(&sample());
        for cut in [3, 9, data.len() - 1] {
            assert!(
                decode_binary(&data[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn writer_reader_round_trip() {
        let t = sample();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let decoded = read_binary(&buf[..]).unwrap();
        assert_eq!(t, decoded);
    }

    #[test]
    fn csv_round_trip() {
        let t = sample();
        let decoded = decode_csv(&encode_csv(&t)).unwrap();
        assert_eq!(t, decoded);
    }

    #[test]
    fn csv_lost_heartbeat_has_empty_field() {
        let csv = encode_csv(&sample());
        assert!(csv.contains("2,200000000,\n"));
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(decode_csv("seq,send_nanos,arrival_nanos\nnot,a,number\n").is_err());
    }

    #[test]
    fn csv_rejects_out_of_order() {
        let csv = "# name=x,interval_nanos=1\n2,2,\n1,1,\n";
        assert!(decode_csv(csv).is_err());
    }
}
