//! `trace-tool` — generate, inspect and convert heartbeat trace files.
//!
//! ```text
//! trace-tool generate wan|lan --samples N --seed S --out FILE
//! trace-tool stats FILE
//! trace-tool segments FILE
//! trace-tool convert IN OUT
//! ```
//!
//! File format is chosen by extension: `.twtr` binary, `.csv` text.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::process::ExitCode;
use twofd_trace::{
    decode_csv, encode_csv, read_binary, table1_segments, write_binary, LanTraceConfig, Trace,
    TraceStats, WanTraceConfig,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  trace-tool generate wan|lan [--samples N] [--seed S] --out FILE\n  \
         trace-tool stats FILE\n  trace-tool segments FILE\n  trace-tool convert IN OUT\n\
         \nformats by extension: .twtr (binary), .csv (text)"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Trace, String> {
    let p = Path::new(path);
    let file = File::open(p).map_err(|e| format!("open {path}: {e}"))?;
    if p.extension().is_some_and(|e| e == "csv") {
        let mut text = String::new();
        BufReader::new(file)
            .read_to_string(&mut text)
            .map_err(|e| format!("read {path}: {e}"))?;
        decode_csv(&text).map_err(|e| format!("parse {path}: {e}"))
    } else {
        read_binary(BufReader::new(file)).map_err(|e| format!("parse {path}: {e}"))
    }
}

fn store(trace: &Trace, path: &str) -> Result<(), String> {
    let p = Path::new(path);
    let file = File::create(p).map_err(|e| format!("create {path}: {e}"))?;
    let mut w = BufWriter::new(file);
    if p.extension().is_some_and(|e| e == "csv") {
        w.write_all(encode_csv(trace).as_bytes())
            .map_err(|e| format!("write {path}: {e}"))
    } else {
        write_binary(trace, w).map_err(|e| format!("write {path}: {e}"))
    }
}

fn parse_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let kind = args.first().ok_or("missing scenario (wan|lan)")?;
    let samples: u64 = parse_flag(args, "--samples")
        .map(|s| s.parse().map_err(|_| format!("bad --samples {s}")))
        .transpose()?
        .unwrap_or(100_000);
    let seed: u64 = parse_flag(args, "--seed")
        .map(|s| s.parse().map_err(|_| format!("bad --seed {s}")))
        .transpose()?
        .unwrap_or(0x2BFD_0001);
    let out = parse_flag(args, "--out").ok_or("missing --out FILE")?;
    let trace = match kind.as_str() {
        "wan" => WanTraceConfig::small(samples, seed).generate(),
        "lan" => LanTraceConfig::small(samples, seed).generate(),
        other => return Err(format!("unknown scenario {other:?} (wan|lan)")),
    };
    store(&trace, &out)?;
    eprintln!(
        "wrote {} heartbeats ({} delivered) to {out}",
        trace.sent(),
        trace.received()
    );
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing FILE")?;
    let trace = load(path)?;
    let s = TraceStats::compute(&trace);
    println!("name:              {}", trace.name);
    println!("interval:          {}", trace.interval);
    println!("sent:              {}", s.sent);
    println!("received:          {}", s.received);
    println!("loss rate (pL):    {:.6}", s.loss_rate);
    println!("delay mean:        {:.3} ms", 1e3 * s.delay_mean);
    println!("delay std:         {:.3} ms", 1e3 * s.delay_std());
    println!("delay var (V(D)):  {:.6e} s^2", s.delay_var);
    println!(
        "delay min/max:     {:.3} / {:.1} ms",
        1e3 * s.delay_min,
        1e3 * s.delay_max
    );
    let (p50, p90, p99, p999) = s.delay_percentiles;
    println!(
        "delay p50/p90/p99/p99.9: {:.2} / {:.2} / {:.2} / {:.2} ms",
        1e3 * p50,
        1e3 * p90,
        1e3 * p99,
        1e3 * p999
    );
    println!("interarrival mean: {:.3} ms", 1e3 * s.interarrival_mean);
    println!("interarrival max:  {:.1} ms", 1e3 * s.interarrival_max);
    Ok(())
}

fn cmd_segments(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing FILE")?;
    let trace = load(path)?;
    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>14}",
        "segment", "from_seq", "to_seq", "loss", "delay_mean_ms"
    );
    for seg in table1_segments(trace.sent() as u64) {
        let sub = seg.slice(&trace);
        let s = TraceStats::compute(&sub);
        println!(
            "{:<10} {:>12} {:>12} {:>10.5} {:>14.2}",
            seg.name,
            seg.from_seq,
            seg.to_seq - 1,
            s.loss_rate,
            1e3 * s.delay_mean
        );
    }
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let input = args.first().ok_or("missing IN")?;
    let output = args.get(1).ok_or("missing OUT")?;
    let trace = load(input)?;
    store(&trace, output)?;
    eprintln!("converted {input} -> {output}");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "generate" => cmd_generate(rest),
        "stats" => cmd_stats(rest),
        "segments" => cmd_segments(rest),
        "convert" => cmd_convert(rest),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
