//! Synthetic trace generators.
//!
//! The paper's evaluation replays two real traces that are not available
//! to us (see DESIGN.md): a week-long WAN trace between Switzerland and
//! Japan — including a loss burst and the 2004 W32/Netsky worm congestion
//! period — and a day-long LAN trace from JAIST. The generators here
//! synthesize traces with the same *structure* and matched first-order
//! statistics, which is what the failure detectors' relative behaviour
//! depends on:
//!
//! * [`WanTraceConfig`] — four regimes at Table-I proportions: stable
//!   auto-correlated delays with rare losses, a dense loss burst, a long
//!   "worm" period of elevated delay/variance/loss, then stability again.
//! * [`LanTraceConfig`] — 20 ms heartbeats, ~100 µs delays with tiny
//!   variance, zero loss, and rare long stalls (the paper observed one
//!   gap of ≈1.5 s).
//!
//! All generators are deterministic in their seed.

use crate::record::Trace;
use crate::segments::table1_segments;
use serde::{Deserialize, Serialize};
use twofd_sim::delay::DelaySpec;
use twofd_sim::heartbeat::HeartbeatRun;
use twofd_sim::loss::LossSpec;
use twofd_sim::rng::DistSpec;
use twofd_sim::scenario::{NetworkScenario, Phase};
use twofd_sim::time::{Nanos, Span};

/// Configuration of the synthetic WAN trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WanTraceConfig {
    /// Total heartbeats (the paper's trace has 5,845,712; default scales
    /// down to 200,000 to keep experiment turnaround reasonable —
    /// Table-I segment proportions are preserved at any size).
    pub samples: u64,
    /// Heartbeat interval Δi (paper: ≈100 ms).
    pub interval: Span,
    /// RNG seed.
    pub seed: u64,
    /// Mean one-way delay in stable periods, seconds.
    pub stable_delay_mean: f64,
    /// Delay standard deviation in stable periods, seconds.
    pub stable_delay_std: f64,
    /// Lag-1 autocorrelation of log-delays in stable periods.
    pub stable_delay_rho: f64,
    /// Loss probability in stable periods.
    pub stable_loss: f64,
    /// Mean delay during the worm period, seconds.
    pub worm_delay_mean: f64,
    /// Delay standard deviation during the worm period, seconds.
    pub worm_delay_std: f64,
    /// Long-run loss probability during the worm period.
    pub worm_loss: f64,
    /// Expected burst length (messages) of worm-period loss bursts.
    pub worm_burst_len: f64,
    /// Loss probability inside the Burst segment's bad state.
    pub burst_loss_bad: f64,
    /// Expected burst length (messages) in the Burst segment.
    pub burst_len: f64,
    /// Long-run loss probability in the Burst segment.
    pub burst_loss: f64,
    /// Per-heartbeat probability of a congestion spike in stable periods.
    pub stable_spike_prob: f64,
    /// Pareto scale of stable-period spikes, seconds. Stable-period
    /// spikes are rare but *large* (route flaps, multi-hundred-ms
    /// stalls): uncoverable by any sane margin, but poison for
    /// variance-scaled timeouts, whose σ estimate they inflate for a
    /// full sampling window.
    pub stable_spike_scale: f64,
    /// Pareto shape of stable-period spikes.
    pub stable_spike_shape: f64,
    /// Spike probability per heartbeat while congested. The default worm
    /// period is *sustained* congestion (always "in episode"): a dense
    /// stream of heavy-tailed queueing spikes that no short window can
    /// track — the regime that separates the 2W-FD from single-window
    /// Chen and from Jacobson-style margins.
    pub worm_spike_prob: f64,
    /// Calm → congested transition probability per heartbeat in the
    /// worm/burst periods (1.0 = permanently congested).
    pub worm_episode_onset: f64,
    /// Congested → calm transition probability per heartbeat (0.0 =
    /// permanently congested). Set both transition probabilities to
    /// intermediate values for episodic congestion ablations.
    pub worm_episode_end: f64,
    /// Pareto scale (minimum spike magnitude), seconds. Spikes are
    /// heavy-tailed — most are small queueing excursions, rare ones reach
    /// seconds — matching measured WAN delay distributions.
    pub spike_scale: f64,
    /// Pareto shape (tail index); smaller = heavier tail.
    pub spike_shape: f64,
}

impl Default for WanTraceConfig {
    fn default() -> Self {
        WanTraceConfig {
            samples: 200_000,
            interval: Span::from_millis(100),
            seed: 0x2BFD_0001,
            stable_delay_mean: 0.125,
            stable_delay_std: 0.005,
            stable_delay_rho: 0.90,
            stable_loss: 0.001,
            worm_delay_mean: 0.150,
            worm_delay_std: 0.020,
            worm_loss: 0.08,
            worm_burst_len: 8.0,
            burst_loss_bad: 0.98,
            burst_len: 40.0,
            burst_loss: 0.45,
            stable_spike_prob: 0.0015,
            stable_spike_scale: 0.25,
            stable_spike_shape: 1.5,
            worm_spike_prob: 0.9,
            worm_episode_onset: 1.0,
            worm_episode_end: 0.0,
            spike_scale: 0.05,
            spike_shape: 1.4,
        }
    }
}

impl WanTraceConfig {
    /// A smaller configuration for unit tests and examples.
    pub fn small(samples: u64, seed: u64) -> Self {
        WanTraceConfig {
            samples,
            seed,
            ..WanTraceConfig::default()
        }
    }

    /// Builds the four-phase network scenario at Table-I proportions.
    pub fn scenario(&self) -> NetworkScenario {
        let segs = table1_segments(self.samples);
        assert_eq!(segs.len(), 4);

        let spike_dist = DistSpec::Pareto {
            x_min: self.spike_scale,
            alpha: self.spike_shape,
        };
        let stable_delay = DelaySpec::Ar1Spiky {
            mean_secs: self.stable_delay_mean,
            std_dev_secs: self.stable_delay_std,
            rho: self.stable_delay_rho,
            floor_nanos: 1_000_000, // 1 ms physical floor
            spike_prob: self.stable_spike_prob,
            spike_dist: DistSpec::Pareto {
                x_min: self.stable_spike_scale,
                alpha: self.stable_spike_shape,
            },
        };
        let worm_delay = DelaySpec::Episodic {
            mean_secs: self.worm_delay_mean,
            std_dev_secs: self.worm_delay_std,
            rho: 0.30,
            floor_nanos: 1_000_000,
            onset_prob: self.worm_episode_onset,
            end_prob: self.worm_episode_end,
            spike_prob: self.worm_spike_prob,
            spike_dist,
        };
        // Gilbert–Elliott parameters from target long-run loss `l`,
        // expected burst length `b` and in-burst loss `q`:
        // p_bg = 1/b, stationary bad prob = l/q, p_gb solved from it.
        let ge = |l: f64, b: f64, q: f64| -> LossSpec {
            let p_bg = 1.0 / b;
            let pi_bad = (l / q).min(0.9999);
            let p_gb = p_bg * pi_bad / (1.0 - pi_bad);
            LossSpec::GilbertElliott {
                p_gb: p_gb.min(1.0),
                p_bg,
                loss_good: 0.0,
                loss_bad: q,
            }
        };

        NetworkScenario::new(vec![
            Phase {
                name: "Stable 1".into(),
                heartbeats: segs[0].len(),
                delay: stable_delay,
                loss: LossSpec::Bernoulli {
                    p: self.stable_loss,
                },
            },
            Phase {
                name: "Burst".into(),
                heartbeats: segs[1].len(),
                delay: worm_delay,
                loss: ge(self.burst_loss, self.burst_len, self.burst_loss_bad),
            },
            Phase {
                name: "Worm".into(),
                heartbeats: segs[2].len(),
                delay: worm_delay,
                loss: ge(self.worm_loss, self.worm_burst_len, 0.9),
            },
            Phase {
                name: "Stable 2".into(),
                heartbeats: segs[3].len(),
                delay: stable_delay,
                loss: LossSpec::Bernoulli {
                    p: self.stable_loss,
                },
            },
        ])
    }

    /// Generates the trace.
    pub fn generate(&self) -> Trace {
        let run = HeartbeatRun::new(self.interval, self.scenario(), self.seed);
        Trace::new("synthetic-wan", self.interval, run.execute())
    }
}

/// Configuration of the synthetic LAN trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LanTraceConfig {
    /// Total heartbeats (paper: 7,104,446; default scales down).
    pub samples: u64,
    /// Heartbeat interval Δi (paper: 20 ms).
    pub interval: Span,
    /// RNG seed.
    pub seed: u64,
    /// Mean one-way delay, seconds (paper: ≈100 µs).
    pub delay_mean: f64,
    /// Delay standard deviation, seconds (paper: "very small").
    pub delay_std: f64,
    /// Probability of a long stall per heartbeat.
    pub stall_prob: f64,
    /// Stall duration range `(lo, hi)` in seconds (paper max ≈1.5 s).
    pub stall_range: (f64, f64),
}

impl Default for LanTraceConfig {
    fn default() -> Self {
        LanTraceConfig {
            samples: 200_000,
            interval: Span::from_millis(20),
            seed: 0x2BFD_0002,
            delay_mean: 100e-6,
            delay_std: 15e-6,
            stall_prob: 2e-6,
            stall_range: (0.5, 1.5),
        }
    }
}

impl LanTraceConfig {
    /// A smaller configuration for unit tests and examples.
    pub fn small(samples: u64, seed: u64) -> Self {
        LanTraceConfig {
            samples,
            seed,
            ..LanTraceConfig::default()
        }
    }

    /// Builds the single-phase LAN scenario.
    pub fn scenario(&self) -> NetworkScenario {
        NetworkScenario::uniform(
            "LAN",
            self.samples,
            DelaySpec::Spiky {
                base: DistSpec::LogNormal {
                    mean: self.delay_mean,
                    std_dev: self.delay_std,
                },
                floor_nanos: 10_000, // 10 µs wire floor
                spike_prob: self.stall_prob,
                spike_dist: DistSpec::Uniform {
                    lo: self.stall_range.0,
                    hi: self.stall_range.1,
                },
            },
            LossSpec::None, // the paper's LAN trace lost no heartbeat
        )
    }

    /// Generates the trace.
    pub fn generate(&self) -> Trace {
        let run = HeartbeatRun::new(self.interval, self.scenario(), self.seed);
        Trace::new("synthetic-lan", self.interval, run.execute())
    }
}

/// Generates a trace from an arbitrary scenario — the hook for custom
/// workloads (failure-injection tests, ablations).
pub fn generate_scripted(
    name: &str,
    interval: Span,
    scenario: NetworkScenario,
    seed: u64,
    crash_at: Option<Nanos>,
) -> Trace {
    let mut run = HeartbeatRun::new(interval, scenario, seed);
    if let Some(at) = crash_at {
        run = run.with_crash_at(at);
    }
    Trace::new(name, interval, run.execute())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn wan_trace_matches_target_statistics() {
        let cfg = WanTraceConfig::small(60_000, 7);
        let trace = cfg.generate();
        assert_eq!(trace.sent() as u64, cfg.samples);
        let stats = TraceStats::compute(&trace);
        // Loss: dominated by stable (~0.1%) plus worm (~8% over a third
        // of the trace) → overall a few percent.
        assert!(
            stats.loss_rate > 0.005 && stats.loss_rate < 0.10,
            "loss {}",
            stats.loss_rate
        );
        // Delay mean sits between stable and worm means.
        assert!(
            stats.delay_mean > 0.10 && stats.delay_mean < 0.20,
            "delay mean {}",
            stats.delay_mean
        );
    }

    #[test]
    fn wan_segments_have_distinct_loss_profiles() {
        let cfg = WanTraceConfig::small(80_000, 3);
        let trace = cfg.generate();
        let segs = table1_segments(cfg.samples);
        let loss = |i: usize| {
            let s = segs[i].slice(&trace);
            TraceStats::compute(&s).loss_rate
        };
        let (stable1, burst, worm, stable2) = (loss(0), loss(1), loss(2), loss(3));
        assert!(burst > 10.0 * stable1, "burst {burst} vs stable {stable1}");
        assert!(worm > 5.0 * stable1, "worm {worm} vs stable {stable1}");
        assert!(burst > worm, "burst {burst} should exceed worm {worm}");
        assert!(stable2 < 0.01, "stable2 {stable2}");
    }

    #[test]
    fn lan_trace_is_clean_and_fast() {
        let cfg = LanTraceConfig::small(50_000, 5);
        let trace = cfg.generate();
        let stats = TraceStats::compute(&trace);
        assert_eq!(stats.loss_rate, 0.0);
        assert!(
            (stats.delay_mean - 100e-6).abs() < 30e-6,
            "delay mean {}",
            stats.delay_mean
        );
        assert!(stats.delay_max < 2.0);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = WanTraceConfig::small(5_000, 11).generate();
        let b = WanTraceConfig::small(5_000, 11).generate();
        assert_eq!(a, b);
        let c = WanTraceConfig::small(5_000, 12).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn scripted_generation_with_crash() {
        let scenario = NetworkScenario::uniform(
            "x",
            100,
            DelaySpec::Constant { nanos: 1_000_000 },
            LossSpec::None,
        );
        let t = generate_scripted(
            "crashy",
            Span::from_millis(10),
            scenario,
            1,
            Some(Nanos::from_millis(505)),
        );
        assert_eq!(t.max_seq(), 50);
        assert_eq!(t.name, "crashy");
    }
}
