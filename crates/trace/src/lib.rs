//! # twofd-trace — heartbeat traces for the 2W-FD reproduction
//!
//! The paper evaluates every failure detector by replaying logged
//! heartbeat arrival times. This crate defines the trace format and the
//! synthetic generators that stand in for the unavailable real traces:
//!
//! * [`record`] — [`Trace`]/[`HeartbeatRecord`]: per-heartbeat sequence
//!   number, send time and (optional) arrival time.
//! * [`codec`] — compact binary (`.twtr`) and CSV serialization.
//! * [`gen`] — synthetic WAN (four regimes at Table-I proportions) and
//!   LAN generators with paper-matched statistics.
//! * [`stats`] — loss rate `pL`, delay variance `V(D)`, percentiles.
//! * [`segments`] — Table I sub-sampling for the per-period analysis.
//! * [`presets`] — named network-scenario presets (quiet LAN, lossy
//!   WAN, sustained/episodic congestion, scripted outages).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod gen;
pub mod presets;
pub mod record;
pub mod segments;
pub mod stats;

pub use codec::{
    decode_binary, decode_csv, encode_binary, encode_csv, read_binary, write_binary, CodecError,
};
pub use gen::{generate_scripted, LanTraceConfig, WanTraceConfig};
pub use record::{Arrival, HeartbeatRecord, Trace};
pub use segments::{count_by_segment, table1_segments, Segment, PAPER_TABLE1, PAPER_WAN_SAMPLES};
pub use stats::TraceStats;
