//! Named network-scenario presets.
//!
//! The ablation studies and failure-injection tests repeatedly need the
//! same families of network conditions — "a quiet LAN", "a lossy WAN",
//! "sustained congestion", "congestion episodes". This module gives each
//! a name and one constructor, so experiment code reads as intent rather
//! than parameter soup. Every preset takes a heartbeat count and returns
//! a [`NetworkScenario`] usable with [`crate::generate_scripted`].

use twofd_sim::delay::DelaySpec;
use twofd_sim::loss::LossSpec;
use twofd_sim::rng::DistSpec;
use twofd_sim::scenario::NetworkScenario;

/// A quiet switched LAN: ~100 µs delays, tiny jitter, no loss.
pub fn quiet_lan(heartbeats: u64) -> NetworkScenario {
    NetworkScenario::uniform(
        "quiet-lan",
        heartbeats,
        DelaySpec::Iid {
            dist: DistSpec::LogNormal {
                mean: 100e-6,
                std_dev: 15e-6,
            },
            floor_nanos: 10_000,
        },
        LossSpec::None,
    )
}

/// A healthy WAN path: ~30 ms smooth delays, sporadic loss.
pub fn stable_wan(heartbeats: u64) -> NetworkScenario {
    NetworkScenario::uniform(
        "stable-wan",
        heartbeats,
        DelaySpec::Ar1LogNormal {
            mean_secs: 0.030,
            std_dev_secs: 0.004,
            rho: 0.8,
            floor_nanos: 1_000_000,
        },
        LossSpec::Bernoulli { p: 0.002 },
    )
}

/// A lossy, jittery WAN path: elevated iid delays, several percent loss.
pub fn lossy_wan(heartbeats: u64, loss: f64) -> NetworkScenario {
    NetworkScenario::uniform(
        "lossy-wan",
        heartbeats,
        DelaySpec::Iid {
            dist: DistSpec::LogNormal {
                mean: 0.06,
                std_dev: 0.025,
            },
            floor_nanos: 1_000_000,
        },
        LossSpec::Bernoulli { p: loss },
    )
}

/// Sustained congestion: dense heavy-tailed queueing spikes on an
/// elevated base — untrackable by any short window.
pub fn sustained_congestion(heartbeats: u64) -> NetworkScenario {
    NetworkScenario::uniform(
        "sustained-congestion",
        heartbeats,
        DelaySpec::Episodic {
            mean_secs: 0.15,
            std_dev_secs: 0.02,
            rho: 0.3,
            floor_nanos: 1_000_000,
            onset_prob: 1.0,
            end_prob: 0.0,
            spike_prob: 0.35,
            spike_dist: DistSpec::Pareto {
                x_min: 0.05,
                alpha: 1.4,
            },
        },
        LossSpec::GilbertElliott {
            p_gb: 0.01,
            p_bg: 0.12,
            loss_good: 0.0,
            loss_bad: 0.9,
        },
    )
}

/// Episodic congestion: short trains of heavy spikes separated by calm
/// stretches — the regime where long estimation windows pay off.
pub fn episodic_congestion(heartbeats: u64) -> NetworkScenario {
    NetworkScenario::uniform(
        "episodic-congestion",
        heartbeats,
        DelaySpec::Episodic {
            mean_secs: 0.15,
            std_dev_secs: 0.02,
            rho: 0.3,
            floor_nanos: 1_000_000,
            onset_prob: 1.0 / 30.0,
            end_prob: 1.0 / 5.0,
            spike_prob: 0.9,
            spike_dist: DistSpec::Pareto {
                x_min: 0.05,
                alpha: 1.4,
            },
        },
        LossSpec::Bernoulli { p: 0.01 },
    )
}

/// A total outage of `outage_heartbeats` in the middle of an otherwise
/// stable WAN run — the deterministic burst used by failure-injection
/// tests.
pub fn wan_with_outage(heartbeats: u64, outage_heartbeats: u64) -> NetworkScenario {
    assert!(
        outage_heartbeats < heartbeats,
        "outage must be shorter than the run"
    );
    let before = (heartbeats - outage_heartbeats) / 2;
    let after = heartbeats - outage_heartbeats - before;
    let delay = DelaySpec::Ar1LogNormal {
        mean_secs: 0.030,
        std_dev_secs: 0.004,
        rho: 0.8,
        floor_nanos: 1_000_000,
    };
    let mut phases = Vec::new();
    let mut push = |name: &str, n: u64, loss: LossSpec| {
        if n > 0 {
            phases.push(twofd_sim::scenario::Phase {
                name: name.to_string(),
                heartbeats: n,
                delay,
                loss,
            });
        }
    };
    push("pre-outage", before, LossSpec::Bernoulli { p: 0.002 });
    push("outage", outage_heartbeats, LossSpec::Bernoulli { p: 1.0 });
    push("post-outage", after, LossSpec::Bernoulli { p: 0.002 });
    NetworkScenario::new(phases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_scripted;
    use crate::stats::TraceStats;
    use twofd_sim::time::Span;

    fn stats(scenario: NetworkScenario, interval_ms: u64, seed: u64) -> TraceStats {
        let t = generate_scripted(
            "preset",
            Span::from_millis(interval_ms),
            scenario,
            seed,
            None,
        );
        TraceStats::compute(&t)
    }

    #[test]
    fn quiet_lan_is_quiet() {
        let s = stats(quiet_lan(20_000), 20, 1);
        assert_eq!(s.loss_rate, 0.0);
        assert!(s.delay_mean < 0.001);
        assert!(s.delay_std() < 0.0001);
    }

    #[test]
    fn stable_wan_has_sporadic_loss_and_smooth_delays() {
        let s = stats(stable_wan(20_000), 100, 2);
        assert!(s.loss_rate > 0.0 && s.loss_rate < 0.01);
        assert!((s.delay_mean - 0.030).abs() < 0.005);
    }

    #[test]
    fn lossy_wan_hits_requested_loss() {
        let s = stats(lossy_wan(20_000, 0.05), 100, 3);
        assert!((s.loss_rate - 0.05).abs() < 0.01, "loss {}", s.loss_rate);
    }

    #[test]
    fn congestion_presets_are_heavy_tailed() {
        let sustained = stats(sustained_congestion(20_000), 100, 4);
        let episodic = stats(episodic_congestion(20_000), 100, 5);
        // Both have p99 delays far above the median.
        assert!(sustained.delay_percentiles.2 > 3.0 * sustained.delay_percentiles.0);
        assert!(episodic.delay_percentiles.2 > 2.0 * episodic.delay_percentiles.0);
        // Sustained congestion spikes a larger fraction of heartbeats.
        assert!(sustained.delay_mean > episodic.delay_mean);
    }

    #[test]
    fn outage_preset_loses_exactly_the_outage_window() {
        let scenario = wan_with_outage(1_000, 50);
        let t = generate_scripted("outage", Span::from_millis(100), scenario, 6, None);
        // The middle 50 heartbeats are all lost.
        let lost: Vec<u64> = t
            .records
            .iter()
            .filter(|r| r.arrival.is_none())
            .map(|r| r.seq)
            .collect();
        assert!(lost.len() >= 50);
        let start = (1_000 - 50) / 2 + 1;
        for seq in start..start + 50 {
            assert!(lost.contains(&seq), "heartbeat {seq} not lost");
        }
    }

    #[test]
    #[should_panic(expected = "outage must be shorter")]
    fn outage_longer_than_run_rejected() {
        wan_with_outage(10, 20);
    }
}
