//! Trace sub-sampling (Table I of the paper).
//!
//! The paper splits its WAN trace into four segments — *Stable 1*,
//! *Burst*, *Worm Period*, *Stable 2* — by heartbeat sequence number and
//! reports per-segment mistake counts (Figure 8). [`Segment`] names a
//! half-open sequence range; [`table1_segments`] reproduces the paper's
//! boundaries, proportionally rescaled when a trace is generated at a
//! smaller sample count.

use crate::record::Trace;
use serde::{Deserialize, Serialize};

/// Paper's total WAN sample count (Table I).
pub const PAPER_WAN_SAMPLES: u64 = 5_845_712;
/// Paper's segment boundaries: name plus `[from, to]` inclusive 1-based
/// sample indices exactly as printed in Table I.
pub const PAPER_TABLE1: [(&str, u64, u64); 4] = [
    ("Stable 1", 1, 2_900_000),
    ("Burst", 2_900_001, 2_930_000),
    ("Worm", 2_930_001, 4_860_000),
    ("Stable 2", 4_860_001, PAPER_WAN_SAMPLES),
];

/// A named half-open sequence-number range `[from_seq, to_seq)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Segment label.
    pub name: String,
    /// First sequence number in the segment.
    pub from_seq: u64,
    /// One past the last sequence number in the segment.
    pub to_seq: u64,
}

impl Segment {
    /// Creates a segment; `from_seq < to_seq` required.
    pub fn new(name: impl Into<String>, from_seq: u64, to_seq: u64) -> Self {
        assert!(from_seq < to_seq, "segment range must be non-empty");
        Segment {
            name: name.into(),
            from_seq,
            to_seq,
        }
    }

    /// Whether `seq` lies in this segment.
    pub fn contains(&self, seq: u64) -> bool {
        seq >= self.from_seq && seq < self.to_seq
    }

    /// Number of sequence numbers covered.
    pub fn len(&self) -> u64 {
        self.to_seq - self.from_seq
    }

    /// Whether the segment is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.from_seq >= self.to_seq
    }

    /// The records of `trace` falling in this segment, as a sub-trace.
    pub fn slice<'a>(&self, trace: &'a Trace) -> Trace
    where
        'a: 'a,
    {
        trace.slice_by_seq(self.from_seq, self.to_seq)
    }
}

/// The paper's Table I segmentation, rescaled to a trace of
/// `total_samples` heartbeats. With `total_samples == PAPER_WAN_SAMPLES`
/// the exact published boundaries are returned.
///
/// Boundaries scale proportionally and are kept contiguous: each segment
/// starts where the previous one ends, the last ends at
/// `total_samples + 1` (sequence numbers are 1-based).
pub fn table1_segments(total_samples: u64) -> Vec<Segment> {
    assert!(total_samples >= 8, "trace too small to segment");
    let scale = |paper_boundary: u64| -> u64 {
        // Proportional position, rounded; 1-based.
        let frac = paper_boundary as f64 / PAPER_WAN_SAMPLES as f64;
        ((frac * total_samples as f64).round() as u64).clamp(1, total_samples)
    };
    let mut segments = Vec::with_capacity(PAPER_TABLE1.len());
    let mut start = 1u64;
    for (i, (name, _, paper_to)) in PAPER_TABLE1.iter().enumerate() {
        let end = if i == PAPER_TABLE1.len() - 1 {
            total_samples + 1
        } else {
            (scale(*paper_to) + 1).max(start + 1)
        };
        segments.push(Segment::new(*name, start, end));
        start = end;
    }
    segments
}

/// Counts how many of `seqs` fall in each segment.
pub fn count_by_segment(segments: &[Segment], seqs: impl IntoIterator<Item = u64>) -> Vec<u64> {
    let mut counts = vec![0u64; segments.len()];
    for seq in seqs {
        if let Some(i) = segments.iter().position(|s| s.contains(seq)) {
            counts[i] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_reproduces_table1() {
        let segs = table1_segments(PAPER_WAN_SAMPLES);
        assert_eq!(segs.len(), 4);
        assert_eq!(segs[0].from_seq, 1);
        assert_eq!(segs[0].to_seq, 2_900_001);
        assert_eq!(segs[1].from_seq, 2_900_001);
        assert_eq!(segs[1].to_seq, 2_930_001);
        assert_eq!(segs[2].from_seq, 2_930_001);
        assert_eq!(segs[2].to_seq, 4_860_001);
        assert_eq!(segs[3].from_seq, 4_860_001);
        assert_eq!(segs[3].to_seq, PAPER_WAN_SAMPLES + 1);
    }

    #[test]
    fn segments_are_contiguous_at_any_scale() {
        for n in [100u64, 1_000, 58_457, 584_571] {
            let segs = table1_segments(n);
            assert_eq!(segs[0].from_seq, 1);
            for w in segs.windows(2) {
                assert_eq!(w[0].to_seq, w[1].from_seq, "gap at scale {n}");
            }
            assert_eq!(segs.last().unwrap().to_seq, n + 1);
            assert!(segs.iter().all(|s| !s.is_empty()));
        }
    }

    #[test]
    fn proportions_roughly_preserved() {
        let n = 100_000u64;
        let segs = table1_segments(n);
        let stable1_frac = segs[0].len() as f64 / n as f64;
        assert!((stable1_frac - 2_900_000.0 / PAPER_WAN_SAMPLES as f64).abs() < 0.01);
        // Burst is small but non-empty.
        assert!(!segs[1].is_empty());
        assert!(segs[1].len() < segs[0].len() / 10);
    }

    #[test]
    fn contains_and_len() {
        let s = Segment::new("x", 10, 20);
        assert!(s.contains(10));
        assert!(s.contains(19));
        assert!(!s.contains(20));
        assert!(!s.contains(9));
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn counting_by_segment() {
        let segs = vec![Segment::new("a", 1, 5), Segment::new("b", 5, 10)];
        let counts = count_by_segment(&segs, [1, 2, 5, 9, 100]);
        assert_eq!(counts, vec![2, 2]); // 100 falls nowhere
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_segment() {
        Segment::new("bad", 5, 5);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_tiny_traces() {
        table1_segments(4);
    }
}
