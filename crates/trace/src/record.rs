//! Heartbeat traces.
//!
//! A [`Trace`] is the unit of evaluation in the paper: the complete log of
//! one heartbeat experiment — for each heartbeat `m_i`, its sequence
//! number, its send time on the monitored host `p`, and its arrival time
//! at the monitoring host `q` (or nothing if the network lost it).
//!
//! Replaying a trace against different failure-detector algorithms is the
//! paper's methodology ("these logged arrival times are used to replay the
//! execution for each FD algorithm"), so the trace type is shared by
//! every higher layer of this workspace.

use serde::{Deserialize, Serialize};
use twofd_sim::heartbeat::HeartbeatOutcome;
use twofd_sim::time::{Nanos, Span};

/// One heartbeat's log entry. Identical in content to
/// [`HeartbeatOutcome`]; re-exported under the trace vocabulary.
pub type HeartbeatRecord = HeartbeatOutcome;

/// A complete heartbeat experiment log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Human-readable origin ("synthetic-wan", "synthetic-lan", …).
    pub name: String,
    /// The heartbeat interval Δi used by the sender.
    pub interval: Span,
    /// Per-heartbeat records, in send (= sequence) order.
    pub records: Vec<HeartbeatRecord>,
}

/// A delivered heartbeat as seen by the monitor: `(seq, arrival)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Sequence number of the delivered heartbeat.
    pub seq: u64,
    /// Send time on `p`'s clock.
    pub send: Nanos,
    /// Arrival time at `q`.
    pub at: Nanos,
}

impl Trace {
    /// Creates a trace, validating record ordering.
    ///
    /// # Panics
    /// If records are not in strictly increasing sequence order.
    pub fn new(name: impl Into<String>, interval: Span, records: Vec<HeartbeatRecord>) -> Self {
        assert!(
            records.windows(2).all(|w| w[0].seq < w[1].seq),
            "trace records must be in strictly increasing sequence order"
        );
        Trace {
            name: name.into(),
            interval,
            records,
        }
    }

    /// Number of heartbeats sent.
    pub fn sent(&self) -> usize {
        self.records.len()
    }

    /// Number of heartbeats delivered.
    pub fn received(&self) -> usize {
        self.records.iter().filter(|r| r.arrival.is_some()).count()
    }

    /// Fraction of heartbeats lost (0 for an empty trace).
    pub fn loss_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        1.0 - self.received() as f64 / self.sent() as f64
    }

    /// The instant the experiment ends: the latest of the last send time
    /// and the last arrival. Used as the replay horizon.
    pub fn end_time(&self) -> Nanos {
        self.records
            .iter()
            .map(|r| r.arrival.unwrap_or(r.send).max(r.send))
            .max()
            .unwrap_or(Nanos::ZERO)
    }

    /// Delivered heartbeats, ordered by **arrival time** — the order the
    /// monitor observes them in. Ties (identical arrival instants) keep
    /// sequence order.
    pub fn arrivals(&self) -> Vec<Arrival> {
        let mut v: Vec<Arrival> = self
            .records
            .iter()
            .filter_map(|r| {
                r.arrival.map(|at| Arrival {
                    seq: r.seq,
                    send: r.send,
                    at,
                })
            })
            .collect();
        v.sort_by(|a, b| a.at.cmp(&b.at).then(a.seq.cmp(&b.seq)));
        v
    }

    /// Restricts the trace to records with `lo <= seq < hi`.
    pub fn slice_by_seq(&self, lo: u64, hi: u64) -> Trace {
        Trace {
            name: format!("{}[{lo}..{hi}]", self.name),
            interval: self.interval,
            records: self
                .records
                .iter()
                .filter(|r| r.seq >= lo && r.seq < hi)
                .copied()
                .collect(),
        }
    }

    /// Largest sequence number in the trace (0 if empty).
    pub fn max_seq(&self) -> u64 {
        self.records.last().map(|r| r.seq).unwrap_or(0)
    }

    /// True if no heartbeat was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, send_ms: u64, arrival_ms: Option<u64>) -> HeartbeatRecord {
        HeartbeatRecord {
            seq,
            send: Nanos::from_millis(send_ms),
            arrival: arrival_ms.map(Nanos::from_millis),
        }
    }

    fn sample() -> Trace {
        Trace::new(
            "t",
            Span::from_millis(100),
            vec![
                rec(1, 100, Some(110)),
                rec(2, 200, None),
                rec(3, 300, Some(340)),
                rec(4, 400, Some(405)),
            ],
        )
    }

    #[test]
    fn counts_and_loss_rate() {
        let t = sample();
        assert_eq!(t.sent(), 4);
        assert_eq!(t.received(), 3);
        assert!((t.loss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_edge_cases() {
        let t = Trace::new("empty", Span::from_millis(100), vec![]);
        assert!(t.is_empty());
        assert_eq!(t.loss_rate(), 0.0);
        assert_eq!(t.end_time(), Nanos::ZERO);
        assert_eq!(t.max_seq(), 0);
        assert!(t.arrivals().is_empty());
    }

    #[test]
    fn end_time_covers_late_arrivals() {
        let t = Trace::new(
            "t",
            Span::from_millis(100),
            vec![rec(1, 100, Some(900)), rec(2, 200, None)],
        );
        assert_eq!(t.end_time(), Nanos::from_millis(900));
    }

    #[test]
    fn arrivals_are_sorted_by_arrival_time() {
        // Reordered delivery: seq 2 overtakes seq 1.
        let t = Trace::new(
            "t",
            Span::from_millis(100),
            vec![rec(1, 100, Some(350)), rec(2, 200, Some(210))],
        );
        let a = t.arrivals();
        assert_eq!(a[0].seq, 2);
        assert_eq!(a[1].seq, 1);
    }

    #[test]
    fn arrival_ties_keep_sequence_order() {
        let t = Trace::new(
            "t",
            Span::from_millis(100),
            vec![rec(1, 100, Some(300)), rec(2, 200, Some(300))],
        );
        let a = t.arrivals();
        assert_eq!(a[0].seq, 1);
        assert_eq!(a[1].seq, 2);
    }

    #[test]
    fn slicing_by_sequence() {
        let t = sample();
        let s = t.slice_by_seq(2, 4);
        assert_eq!(s.sent(), 2);
        assert_eq!(s.records[0].seq, 2);
        assert_eq!(s.records[1].seq, 3);
        assert_eq!(s.interval, t.interval);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_out_of_order_records() {
        Trace::new(
            "bad",
            Span::from_millis(100),
            vec![rec(2, 200, None), rec(1, 100, None)],
        );
    }

    #[test]
    fn max_seq_reports_last() {
        assert_eq!(sample().max_seq(), 4);
    }
}
