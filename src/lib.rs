//! # twofd — 2W-FD: A Failure Detector Algorithm with QoS
//!
//! Facade crate of the 2W-FD reproduction. Re-exports the full public
//! API of the workspace:
//!
//! * [`core`] — the 2W-FD algorithm, the Chen / Bertier /
//!   φ-accrual / ED baselines, trace replay, QoS metrics and Chen's QoS
//!   configuration procedure.
//! * [`trace`] — heartbeat traces, codecs and the synthetic
//!   WAN/LAN generators.
//! * [`sim`] — the deterministic network simulation substrate.
//! * [`service`] — failure detection as a shared service
//!   for multiple applications with distinct QoS tuples.
//! * [`net`] — a live UDP heartbeat transport.
//! * [`obs`] — live observability: lock-free metrics, online QoS
//!   tracking against contracted bounds, Prometheus exposition.
//! * [`cluster`] — a deterministic virtual-time cluster simulator that
//!   drives the real [`net`] runtime through a scripted scenario
//!   library (crashes, partitions, brownouts, clock skew, churn).
//! * [`federation`] — the monitor-of-monitors tier: liveness digests
//!   relayed between monitors, crash-recovery semantics (incarnations,
//!   `Recovered` transitions), stream adoption across monitor crashes
//!   and the Impact FD's set-valued group aggregation.
//!
//! ## Quickstart
//!
//! ```
//! use twofd::core::{replay, TwoWindowFd};
//! use twofd::trace::WanTraceConfig;
//! use twofd::sim::Span;
//!
//! // Synthesize a WAN-like heartbeat trace and replay the paper's
//! // detector over it.
//! let trace = WanTraceConfig::small(10_000, 42).generate();
//! let mut fd = TwoWindowFd::paper_default(trace.interval, Span::from_millis(100));
//! let metrics = replay(&mut fd, &trace).metrics();
//! println!("detection time {:.3}s, mistake rate {:.2e}/s, accuracy {:.6}",
//!          metrics.detection_time, metrics.mistake_rate, metrics.query_accuracy);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use twofd_cluster as cluster;
pub use twofd_core as core;
pub use twofd_federation as federation;
pub use twofd_net as net;
pub use twofd_obs as obs;
pub use twofd_service as service;
pub use twofd_sim as sim;
pub use twofd_trace as trace;

// Flat re-exports of the most used items for `use twofd::prelude::*`.
pub mod prelude {
    //! One-line import of the common API surface.
    pub use twofd_core::{
        calibrate, configure, detect_crash, replay, AnyDetector, BertierFd, ChenFd, Decision,
        DetectorConfig, DetectorSpec, EdFd, FailureDetector, FdConfig, FdOutput, MultiWindowFd,
        NetworkBehavior, NetworkEstimator, PhiAccrualFd, QosMetrics, QosSpec, ReplayResult,
        TwoWindowFd,
    };
    pub use twofd_obs::{MetricsServer, QosTracker, QosTrackerConfig, QosVerdict, Registry};
    pub use twofd_service::{analyze, combine, AppRegistry, SharedServiceDetector};
    pub use twofd_sim::{Nanos, Span};
    pub use twofd_trace::{LanTraceConfig, Trace, TraceStats, WanTraceConfig};
}
